"""``repro.serve`` — a streaming serving runtime over compiled
pipelines.

The paper's schedules describe *steady-state* execution over an
unbounded stream; this package is the subsystem that actually runs
them that way.  It keeps compiled pipelines warm in
:class:`PipelineSession`\\ s, coalesces request traffic into
steady-state-multiple batches (:class:`DynamicBatcher` /
:class:`BatchPolicy`), sheds overload with typed
:class:`~repro.errors.ServerOverloaded` rejections
(:class:`AdmissionQueue`), and serves several graphs concurrently
from one :class:`StreamServer` with round-robin GPU arbitration.
Timing is fully simulated (GPU timing model cycles), outputs are
token-exact against the reference interpreter, and per-session
metrics flow through :mod:`repro.obs`.

Quickstart::

    from repro.apps import benchmark_by_name
    from repro.serve import StreamServer, synthetic_workload

    server = StreamServer()
    server.register("DCT", benchmark_by_name("DCT").build())
    server.start()
    report = server.play(synthetic_workload(["DCT"], requests=32,
                                            seed=7))
    print(report.describe())

See docs/serving.md for the architecture and tuning guide.
"""

from __future__ import annotations

from ..errors import (
    ServeError,
    ServerOverloaded,
    SessionClosed,
    SessionUnhealthy,
)
from .admission import AdmissionQueue
from .autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from .batcher import BatchPolicy, DynamicBatcher, PlannedBatch
from .breaker import CircuitBreaker
from .durable import (
    CRASHPOINTS,
    CheckpointStore,
    DurabilityConfig,
    DurableState,
    RequestJournal,
    workload_fingerprint,
)
from .fleet import CrashRecord, FleetReport, FleetServer
from .loadgen import load_request_file, synthetic_workload
from .request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    BatchRecord,
    Response,
    ServeRequest,
)
from .router import ConsistentHashRouter
from .server import ServeReport, SessionReport, StreamServer, percentile
from .session import PipelineSession, default_session_options
from .shard import FairDispatcher, Shard
from .steal import ShardLoad, StealMove, StealPolicy, plan_steals

__all__ = [
    "AdmissionQueue",
    "AutoscalePolicy",
    "Autoscaler",
    "BatchPolicy",
    "BatchRecord",
    "CRASHPOINTS",
    "CheckpointStore",
    "CircuitBreaker",
    "ConsistentHashRouter",
    "CrashRecord",
    "DurabilityConfig",
    "DurableState",
    "DynamicBatcher",
    "FairDispatcher",
    "FleetReport",
    "FleetServer",
    "PipelineSession",
    "PlannedBatch",
    "RequestJournal",
    "Response",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ScaleEvent",
    "ServeError",
    "ServeReport",
    "ServeRequest",
    "ServerOverloaded",
    "SessionClosed",
    "SessionUnhealthy",
    "SessionReport",
    "Shard",
    "ShardLoad",
    "StealMove",
    "StealPolicy",
    "StreamServer",
    "default_session_options",
    "load_request_file",
    "percentile",
    "plan_steals",
    "synthetic_workload",
    "workload_fingerprint",
]
