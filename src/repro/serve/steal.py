"""Cross-shard work stealing for hot tenants.

A served pipeline is a *sequential* stateful stream — its iterations
must execute in order on one executor — so the fleet cannot split one
pipeline's batch across shards.  What it **can** move is the whole
pipeline: its warm session object plus every queued, not-yet-batched
request.  Stealing therefore migrates pipelines from hot shards
(rolling p99 over budget, deep queues) to cold ones, which drains the
hot shard's dispatch backlog without touching any in-flight batch.

Correctness leans on two earlier invariants:

* stream windows are claimed **at admission** (arrival order), so a
  migrated request computes byte-identical outputs on any shard; and
* only pipelines with **no in-flight batch** are eligible, so no
  response can be duplicated or dropped by a move.

``plan_steals`` is a pure function of an observed load snapshot — the
fleet calls it at window-bucket boundaries with signals read from
:class:`~repro.obs.windows.WindowRegistry`, so the same replay always
plans the same moves (the determinism contract of the simulated
clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServeError


@dataclass(frozen=True)
class StealPolicy:
    """When a shard counts as hot and what a migration costs."""

    #: Rolling-p99 budget (simulated ms): a shard whose window p99
    #: exceeds this is a steal candidate (donor).
    p99_budget_ms: float = 50.0
    #: Minimum queued requests on the donor before stealing triggers —
    #: a breached p99 with an empty queue has nothing worth moving.
    min_queue_depth: int = 2
    #: Simulated cost of moving one pipeline between shards (session
    #: handoff + queue transfer), charged as a dispatch-readiness floor
    #: on the receiving shard.
    migration_ms: float = 0.5
    #: Bucket-boundary cooldown: after a shard donates, it may not
    #: donate again for this many simulated ms (damps oscillation).
    cooldown_ms: float = 10.0
    #: At most this many pipelines move per planning round.
    max_moves_per_round: int = 1

    def __post_init__(self) -> None:
        if self.p99_budget_ms <= 0:
            raise ServeError("p99_budget_ms must be > 0")
        if self.min_queue_depth < 1:
            raise ServeError("min_queue_depth must be >= 1")
        if self.migration_ms < 0:
            raise ServeError("migration_ms must be >= 0")
        if self.cooldown_ms < 0:
            raise ServeError("cooldown_ms must be >= 0")
        if self.max_moves_per_round < 1:
            raise ServeError("max_moves_per_round must be >= 1")


@dataclass(frozen=True)
class ShardLoad:
    """One shard's load signals at a planning instant."""

    shard_id: int
    p99_ms: Optional[float]      # rolling window p99 (None: no samples)
    queue_depth: int             # queued requests across hosted queues
    #: Hosted pipelines eligible to move: no in-flight batch, with
    #: their queued request count (moving an empty pipeline is legal —
    #: it rebalances future traffic — but queued ones go first).
    movable: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class StealMove:
    """One planned migration."""

    pipeline: str
    from_shard: int
    to_shard: int
    queued_requests: int


def plan_steals(loads: list[ShardLoad], policy: StealPolicy,
                now_ms: float,
                last_donated_ms: Optional[dict[int, float]] = None
                ) -> list[StealMove]:
    """Plan this round's migrations from a load snapshot.

    Donors are shards whose rolling p99 breaches the budget with at
    least ``min_queue_depth`` queued requests and an elapsed cooldown;
    receivers are the shards with the shallowest queues.  The hottest
    donor moves its most-queued movable pipeline to the coldest
    receiver, up to ``max_moves_per_round`` moves.  All ordering ties
    break on shard id / pipeline name, so the plan is a deterministic
    function of its inputs.
    """
    last_donated_ms = last_donated_ms or {}
    donors = [
        load for load in loads
        if load.p99_ms is not None
        and load.p99_ms > policy.p99_budget_ms
        and load.queue_depth >= policy.min_queue_depth
        and load.movable
        and now_ms - last_donated_ms.get(load.shard_id,
                                         float("-inf"))
        >= policy.cooldown_ms]
    if not donors:
        return []
    # Hottest first: highest p99, then deepest queue, then id.
    donors.sort(key=lambda load: (-load.p99_ms, -load.queue_depth,
                                  load.shard_id))
    donor_ids = {load.shard_id for load in donors}
    receivers = sorted(
        (load for load in loads if load.shard_id not in donor_ids),
        key=lambda load: (load.queue_depth,
                          load.p99_ms if load.p99_ms is not None
                          else 0.0,
                          load.shard_id))
    if not receivers:
        return []

    moves: list[StealMove] = []
    receiver_depth = {load.shard_id: load.queue_depth
                      for load in receivers}
    for donor in donors:
        if len(moves) >= policy.max_moves_per_round:
            break
        # Most-queued movable pipeline first; name tie-break.
        candidates = sorted(donor.movable.items(),
                            key=lambda item: (-item[1], item[0]))
        pipeline, queued = candidates[0]
        if queued == 0:
            continue   # nothing queued is worth a migration charge
        target = min(receiver_depth,
                     key=lambda sid: (receiver_depth[sid], sid))
        moves.append(StealMove(pipeline=pipeline,
                               from_shard=donor.shard_id,
                               to_shard=target,
                               queued_requests=queued))
        receiver_depth[target] += queued
    return moves


__all__ = ["StealPolicy", "ShardLoad", "StealMove", "plan_steals"]
