"""Consistent-hash session -> shard routing.

The fleet routes each served pipeline to a home shard with a classic
consistent-hash ring: every shard owns ``virtual_nodes`` points on a
64-bit ring (blake2b of ``shard:<id>:<replica>``), and a pipeline maps
to the first shard point clockwise of its own hash.  The property this
buys — and the one the fleet's scaling story depends on — is **bounded
movement**: adding or removing one shard of an ``N``-shard ring moves
only the keys that fall between the changed shard's points and their
predecessors, roughly ``K/N`` of ``K`` routed keys, instead of
rehashing everything the way ``hash(key) % N`` would.

Hashes are blake2b (not Python's ``hash``), so routing is stable
across processes and runs — the same fleet layout replays identically
regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

from ..errors import ServeError

#: Ring points per shard.  More points smooth the load split between
#: shards at the cost of a larger (still tiny) ring.
DEFAULT_VIRTUAL_NODES = 64


def _hash64(text: str) -> int:
    digest = hashlib.blake2b(text.encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRouter:
    """Stable pipeline -> shard assignment under shard churn."""

    def __init__(self, shard_ids: Iterable[int] = (),
                 *, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if virtual_nodes < 1:
            raise ServeError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._shards: set[int] = set()
        self._points: list[int] = []         # sorted ring positions
        self._owners: dict[int, int] = {}    # ring position -> shard id
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> list[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ServeError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for replica in range(self.virtual_nodes):
            point = _hash64(f"shard:{shard_id}:{replica}")
            # blake2b collisions over a 64-bit ring are vanishingly
            # rare; deterministic tie-break keeps the ring well-defined
            # anyway (lowest shard id wins the point).
            owner = self._owners.get(point)
            if owner is None:
                bisect.insort(self._points, point)
                self._owners[point] = shard_id
            elif shard_id < owner:
                self._owners[point] = shard_id

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ServeError(f"shard {shard_id} not on the ring")
        self._shards.discard(shard_id)
        stale = [point for point, owner in self._owners.items()
                 if owner == shard_id]
        for point in stale:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    # ------------------------------------------------------------------
    def route(self, key: str) -> int:
        """Home shard of ``key`` (the first ring point clockwise)."""
        if not self._points:
            raise ServeError("consistent-hash ring is empty")
        position = _hash64(f"key:{key}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def assignments(self, keys: Iterable[str]) -> dict[str, int]:
        return {key: self.route(key) for key in keys}

    def moved_keys(self, keys: Iterable[str],
                   before: Optional[dict[str, int]] = None
                   ) -> dict[str, int]:
        """Keys whose assignment differs from ``before`` (for bounded-
        movement accounting around an add/remove)."""
        before = before or {}
        return {key: shard for key, shard in
                self.assignments(keys).items()
                if before.get(key) != shard}


__all__ = ["ConsistentHashRouter", "DEFAULT_VIRTUAL_NODES"]
