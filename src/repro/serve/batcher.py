"""Dynamic batching policy and batch formation.

The batcher turns queued requests into *steady-state-multiple*
batches: execution is only meaningful in whole steady iterations of
the stream graph (the steady-state input rate is the quantum of
input consumption), so a batch's size is the number of fresh macro
iterations needed to cover its requests' stream windows.  Two knobs
bound the classic batching-vs-latency tradeoff:

* ``max_batch_iterations`` — cap on fresh steady iterations per
  launch.  Larger batches amortize the kernel-launch overhead over
  more iterations (the paper's SWPn coarsening argument) but stretch
  the latency of the requests at the front of the batch.
* ``max_wait_ms`` — how long the oldest queued request may wait for
  batchmates before the batch is dispatched anyway.  ``0`` disables
  coalescing delay entirely (batches still form from whatever is
  queued at dispatch time).

The policy also carries the admission bounds
(``max_queue_requests`` / ``max_tenant_requests``) and the resilience
contract (``request_deadline_ms`` per-request queueing deadline,
``breaker_failure_threshold`` / ``breaker_cooldown_ms`` for the
per-session :class:`~repro.serve.breaker.CircuitBreaker`) so one
object describes a session's full traffic contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ServeError
from .admission import AdmissionQueue
from .breaker import CircuitBreaker
from .request import ServeRequest
from .session import PipelineSession


@dataclass(frozen=True)
class BatchPolicy:
    """Traffic contract of one served pipeline."""

    max_batch_iterations: int = 16     # fresh macro iterations / launch
    max_batch_requests: int = 32       # requests coalesced per batch
    max_wait_ms: float = 0.5           # batching delay bound
    max_queue_requests: int = 64       # admission: global queue bound
    max_tenant_requests: Optional[int] = None  # admission: tenant quota
    #: Per-request queueing deadline: a request still undispatched this
    #: many simulated ms after arrival is shed (typed, reason
    #: ``deadline``) instead of served arbitrarily late.  None disables.
    request_deadline_ms: Optional[float] = None
    #: Consecutive failed batches before the session's circuit breaker
    #: opens and admissions shed with SessionUnhealthy.
    breaker_failure_threshold: int = 3
    #: Simulated ms an open breaker waits before a half-open probe.
    breaker_cooldown_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.max_batch_iterations < 1:
            raise ServeError("max_batch_iterations must be >= 1")
        if self.max_batch_requests < 1:
            raise ServeError("max_batch_requests must be >= 1")
        if self.max_wait_ms < 0:
            raise ServeError("max_wait_ms must be >= 0")
        if self.max_queue_requests < 1:
            raise ServeError("max_queue_requests must be >= 1")
        if self.max_tenant_requests is not None \
                and self.max_tenant_requests < 1:
            raise ServeError("max_tenant_requests must be >= 1")
        if self.request_deadline_ms is not None \
                and self.request_deadline_ms <= 0:
            raise ServeError("request_deadline_ms must be > 0")
        if self.breaker_failure_threshold < 1:
            raise ServeError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ServeError("breaker_cooldown_ms must be >= 0")


@dataclass
class PlannedBatch:
    """A formed batch: the chosen requests plus their stream windows."""

    requests: list[ServeRequest]
    windows: list[tuple[int, int]]     # per request: (start, iterations)
    through_base: int                  # stream must drain [0, through)
    new_macro_iterations: int          # fresh steady iterations to run

    @property
    def base_iterations(self) -> int:
        return sum(n for _, n in self.windows)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted({r.tenant for r in self.requests}))


class DynamicBatcher:
    """Forms steady-state-multiple batches for one session."""

    def __init__(self, session: PipelineSession,
                 policy: BatchPolicy) -> None:
        self.session = session
        self.policy = policy
        self.queue = AdmissionQueue(
            session.name,
            max_requests=policy.max_queue_requests,
            max_tenant_requests=policy.max_tenant_requests)
        self.breaker = CircuitBreaker(
            session.name,
            failure_threshold=policy.breaker_failure_threshold,
            cooldown_ms=policy.breaker_cooldown_ms)

    # ------------------------------------------------------------------
    def wait_deadline_ms(self) -> Optional[float]:
        """Latest dispatch time the oldest queued request tolerates."""
        oldest = self.queue.earliest_arrival_ms()
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_ms

    def batch_is_full(self) -> bool:
        """Whether waiting longer cannot grow the next batch."""
        if self.queue.depth >= self.policy.max_batch_requests:
            return True
        claimed_end = self.queue.max_claimed_end()
        if claimed_end is not None:
            # Pre-claimed windows (server claims at admission): the
            # queued work's stream reach is the largest claimed end.
            pending = self.session.pending_macro_iterations(claimed_end)
        else:
            pending = self.session.pending_macro_iterations(
                self.session.cursor + self.queue.queued_base_iterations())
        return pending >= self.policy.max_batch_iterations

    def _base_budget(self) -> int:
        """Base-iteration budget of the next batch: the macro cap plus
        any already-drained slack left over from previous batches'
        round-up to whole steady iterations."""
        session = self.session
        slack = session.macro_iterations_done * session.base_per_macro \
            - session.cursor
        return self.policy.max_batch_iterations * session.base_per_macro \
            + max(0, slack)

    # ------------------------------------------------------------------
    def form_batch(self) -> PlannedBatch:
        """Dequeue tenant-fairly and resolve stream windows.

        Requests come off the admission queue round-robin across
        tenants until the batch reaches either cap.  Two window modes:

        * **pre-claimed** (queued requests carry ``window_start`` —
          servers claim in arrival order at admission): the batch uses
          the claimed windows, and the budget bounds how far down the
          stream one launch may reach;
        * **legacy** (standalone batcher use): windows are claimed at
          dequeue, so claim order equals dequeue order.

        At least one request is always taken — a single request larger
        than ``max_batch_iterations`` becomes its own (oversized) batch
        rather than starving.
        """
        if not self.queue.depth:
            raise ServeError(
                f"session {self.session.name!r}: no queued requests")
        session = self.session
        if self.queue.max_claimed_end() is not None:
            allowed_end = (session.macro_iterations_done
                           + self.policy.max_batch_iterations) \
                * session.base_per_macro
            chosen = self.queue.take_batch(
                self.policy.max_batch_requests, end_budget=allowed_end)
            windows = [(r.window_start, r.iterations) for r in chosen]
        else:
            chosen = self.queue.take_batch(
                self.policy.max_batch_requests, self._base_budget())
            windows = [(session.claim(r.iterations), r.iterations)
                       for r in chosen]
        through = max(start + n for start, n in windows)
        new_macro = session.pending_macro_iterations(through)
        return PlannedBatch(requests=chosen, windows=windows,
                            through_base=through,
                            new_macro_iterations=new_macro)

    @staticmethod
    def macro_for(session: PipelineSession, base_iterations: int) -> int:
        return math.ceil(base_iterations / session.base_per_macro)
