"""One warm, compiled pipeline plus its incremental execution state.

A :class:`PipelineSession` is the serving runtime's unit of tenancy:
it compiles a stream graph once (through :func:`repro.compiler
.compile_stream_program`, so a shared :mod:`repro.cache` makes warm
restarts skip profiling and the ILP entirely), then keeps a resumable
:class:`~repro.runtime.swp_executor.SwpExecutor` alive across request
batches.  The pipeline is filled exactly once — after that, every
batch of ``m`` steady iterations is a *single* simulated kernel launch
with ``repeat=m``, which is the paper's SWPn coarsening argument
(Section V-B) applied dynamically to live traffic instead of at
compile time.

Timing comes from the GPU timing model, not wall clock: the session
asks :class:`~repro.gpu.simulator.GpuSimulator` for the cycle cost of
its kernel at each batch size (memoized — traffic revisits a small set
of sizes) and converts cycles to simulated milliseconds through the
device clock.  The per-request baseline the load harness compares
against — a cold executor per request, one launch per invocation,
pipeline fill every time — uses the same model, so batching speedups
are apples-to-apples.
"""

from __future__ import annotations

import math
from typing import Optional

from .. import obs
from ..compiler import (
    CompileOptions,
    CompiledProgram,
    compile_stream_program,
    replace_options,
    swp_kernel,
)
from ..errors import ServeError, SessionClosed
from ..gpu.simulator import GpuSimulator
from ..graph.graph import StreamGraph
from ..graph.rates import solve_rates
from ..runtime.interpreter import Interpreter
from ..runtime.swp_executor import SwpExecutor


def default_session_options(**changes) -> CompileOptions:
    """The serving compile profile: plain SWP, no static coarsening
    (the dynamic batcher chooses the per-launch repeat), minimal timed
    window (the session does its own cycle accounting)."""
    base = CompileOptions(scheme="swp", coarsening=1, macro_iterations=1)
    return replace_options(base, **changes) if changes else base


class PipelineSession:
    """A compiled pipeline held warm for incremental request traffic."""

    def __init__(self, name: str, graph: StreamGraph, *,
                 options: Optional[CompileOptions] = None,
                 jobs: Optional[int] = None,
                 cache=None,
                 exec_backend: Optional[str] = None,
                 compiled: Optional[CompiledProgram] = None) -> None:
        options = options or default_session_options()
        if options.scheme not in ("swp", "swpnc"):
            raise ServeError(
                f"session {name!r}: serving requires a software-"
                f"pipelined scheme, got {options.scheme!r}")
        if options.coarsening != 1:
            raise ServeError(
                f"session {name!r}: compile with coarsening=1 — the "
                f"dynamic batcher chooses the per-launch repeat factor")
        self.name = name
        self.graph = graph
        if compiled is not None:
            # Warm spin-up: adopt an already-compiled program (fleet
            # replicas, crash replacements) — profiling and the ILP
            # search are skipped entirely.
            self.compiled = compiled
        else:
            with obs.span("serve.compile", session=name):
                self.compiled = compile_stream_program(
                    graph, options, jobs=jobs, cache=cache)
        if obs.is_enabled():
            obs.emit("session_compile", session=name,
                     scheme=options.scheme,
                     degraded=self.compiled.degraded,
                     warm=compiled is not None)
        self.options = options
        self.device = options.device
        self.program = self.compiled.program
        self.schedule = self.compiled.search.schedule
        self.exec_backend = exec_backend
        self.executor = SwpExecutor(self.program, self.schedule,
                                    exec_backend=exec_backend, cache=cache)
        self._simulator = GpuSimulator(self.device)
        self._kernel_cycles: dict[int, float] = {}

        #: Pipeline depth: invocations before the first iteration drains.
        self.fill_invocations = self.schedule.max_stage
        #: Base steady iterations covered by one macro iteration (one
        #: executor invocation).
        self.base_per_macro = self.program.base_iterations_per_macro

        # Sink stream geometry: tokens per base iteration, and how many
        # tokens each sink consumed during graph initialization (the
        # executor's token index 0 is the first *steady* token).
        steady = solve_rates(graph)
        init_probe = Interpreter(graph)
        self.sinks: list[tuple[str, int, int]] = []
        for node in graph.sinks:
            per_iteration = steady[node] * sum(
                node.pop_rate(port) for port in range(node.num_inputs))
            self.sinks.append((node.name, node.uid, per_iteration))
        self.sink_init_tokens: dict[int, int] = {
            node.uid: len(init_probe.sink_outputs[node.uid])
            for node in graph.sinks}

        self._cursor = 0          # next unassigned base iteration
        self._macro_done = 0      # macro iterations completed (drained)
        self._warmed = False
        self._closed = False

    # -- stream-window bookkeeping -------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def cursor(self) -> int:
        """Next base iteration of the output stream to be assigned."""
        return self._cursor

    @property
    def macro_iterations_done(self) -> int:
        return self._macro_done

    def claim(self, iterations: int) -> int:
        """Reserve the next ``iterations`` base iterations of the
        stream for one request; returns the window start."""
        if self._closed:
            raise SessionClosed(f"session {self.name!r} is closed")
        start = self._cursor
        self._cursor += iterations
        return start

    def pending_macro_iterations(self, through_base: int) -> int:
        """Macro iterations still to run for the stream to cover base
        iterations ``[0, through_base)``."""
        return max(0, math.ceil(through_base / self.base_per_macro)
                   - self._macro_done)

    # -- execution -----------------------------------------------------
    def advance_to(self, through_base: int) -> tuple[int, int]:
        """Run the pipeline until base iterations ``[0, through_base)``
        have fully drained; returns ``(new_macro_iterations,
        invocations_issued)`` — both 0 when already covered."""
        if self._closed:
            raise SessionClosed(f"session {self.name!r} is closed")
        macro_needed = math.ceil(through_base / self.base_per_macro)
        new_macro = macro_needed - self._macro_done
        if new_macro <= 0:
            return 0, 0
        target_invocations = macro_needed + self.fill_invocations
        delta = target_invocations - self.executor.invocations_done
        if delta > 0:
            self.executor.run(delta)
        self._macro_done = macro_needed
        self._warmed = True
        return new_macro, max(0, delta)

    def restore_progress(self, cursor: int, macro_done: int) -> None:
        """Fast-forward a fresh session to a checkpointed stream
        position by deterministic re-execution.

        Executors are pure functions of their invocation count, so
        re-running ``macro_done`` macro iterations (plus pipeline
        fill) reproduces the checkpointed sink tokens bit for bit —
        the checkpoint itself only needs to store two integers per
        session.  Used by durable recovery (docs/robustness.md)."""
        if cursor < 0 or macro_done < 0:
            raise ServeError(
                f"session {self.name!r}: negative restore position "
                f"(cursor={cursor}, macro_done={macro_done})")
        if (self._cursor or self._macro_done
                or self.executor.invocations_done):
            raise ServeError(
                f"session {self.name!r}: restore_progress needs a "
                "fresh session (stream already advanced)")
        if macro_done > 0:
            self.executor.run(macro_done + self.fill_invocations)
            self._macro_done = macro_done
            self._warmed = True
        self._cursor = cursor

    def outputs_for(self, start: int, iterations: int) -> dict[str, list]:
        """Sink tokens of base-iteration window ``[start,
        start + iterations)``; the window must already be drained."""
        outputs: dict[str, list] = {}
        result_maps = self.executor.sink_tokens
        for sink_name, uid, per_iteration in self.sinks:
            token_map = result_maps[uid]
            lo = start * per_iteration
            hi = (start + iterations) * per_iteration
            try:
                outputs[sink_name] = [token_map[i] for i in range(lo, hi)]
            except KeyError as exc:
                raise ServeError(
                    f"session {self.name!r}: sink {sink_name!r} window "
                    f"[{lo}, {hi}) not fully drained (missing token "
                    f"{exc.args[0]})") from None
        return outputs

    def close(self) -> None:
        self._closed = True

    def replica(self) -> "PipelineSession":
        """A fresh session over the same compiled program: new (cold)
        executor, zero stream progress, no recompile.  The fleet's
        crash recovery builds one and replays the dead shard's claimed
        windows through it — byte-identical by executor determinism."""
        return PipelineSession(self.name, self.graph,
                               options=self.options,
                               exec_backend=self.exec_backend,
                               compiled=self.compiled)

    # -- simulated-cycle accounting ------------------------------------
    def kernel_cycles(self, repeat: int) -> float:
        """Cycle cost of one launch executing ``repeat`` steady
        iterations (GPU timing model, memoized per repeat)."""
        if repeat < 1:
            raise ServeError(f"kernel repeat must be >= 1, got {repeat}")
        cycles = self._kernel_cycles.get(repeat)
        if cycles is None:
            kernel = swp_kernel(
                self.program, self.schedule,
                replace_options(self.options, coarsening=repeat))
            cycles = self._simulator.simulate_kernel(kernel).cycles
            self._kernel_cycles[repeat] = cycles
        return cycles

    @property
    def launch_cycles(self) -> float:
        return float(self.device.kernel_launch_cycles)

    def fill_cycles(self) -> float:
        """One-time pipeline-fill cost: the prologue invocations run as
        individual launches before the first iteration drains."""
        if self.fill_invocations == 0:
            return 0.0
        return self.fill_invocations \
            * (self.kernel_cycles(1) + self.launch_cycles)

    def batch_cycles(self, new_macro_iterations: int) -> float:
        """Cost of serving one batch that needs ``new_macro_iterations``
        fresh steady iterations: the one-time fill (first batch only)
        plus a single launch with ``repeat=new_macro_iterations``."""
        cycles = 0.0
        if not self._warmed and new_macro_iterations > 0:
            cycles += self.fill_cycles()
        if new_macro_iterations > 0:
            cycles += self.launch_cycles \
                + self.kernel_cycles(new_macro_iterations)
        return cycles

    def unbatched_request_cycles(self, base_iterations: int) -> float:
        """The no-batching baseline for one request: a cold executor,
        pipeline fill included, one launch per steady iteration."""
        macro = math.ceil(base_iterations / self.base_per_macro)
        invocations = macro + self.fill_invocations
        return invocations * (self.kernel_cycles(1) + self.launch_cycles)

    def ms(self, cycles: float) -> float:
        return self.device.cycles_to_seconds(cycles) * 1e3
