"""Multi-tenant serving front end: registry, event loop, reporting.

A :class:`StreamServer` owns several :class:`PipelineSession`\\ s (one
per registered graph), compiles them concurrently over the shared
:mod:`repro.parallel` worker pool at :meth:`start`, and serves a
workload — a list of timestamped :class:`ServeRequest`\\ s — through a
deterministic discrete-event loop in *simulated* time:

1. arrivals are admitted (or shed, with typed rejections) the moment
   the simulated clock reaches them;
2. each session's dynamic batcher decides when its next batch is
   dispatchable — immediately when full, otherwise when the oldest
   queued request's ``max_wait_ms`` grace expires;
3. the single simulated GPU executes one batch at a time; sessions
   take turns round-robin when several are dispatchable, so one hot
   pipeline cannot starve the others.

Every simulated millisecond comes from the GPU timing model via the
sessions' cycle accounting; no wall-clock time is involved, so a
workload replays bit-identically.  ``play`` returns a
:class:`ServeReport` with per-session batching/latency/shedding
statistics; the same numbers flow into :mod:`repro.obs` metrics
(queue depth gauge, batch-size and latency histograms, shed counters)
when the observability layer is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import obs
from ..compiler import CompileOptions
from ..errors import (
    ReproError,
    ServeError,
    ServerOverloaded,
    SessionClosed,
    SessionUnhealthy,
)
from ..graph.graph import StreamGraph
from ..parallel import parallel_map
from .batcher import BatchPolicy, DynamicBatcher
from .request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    BatchRecord,
    Response,
    ServeRequest,
)
from .session import PipelineSession


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class SessionReport:
    """Serving statistics of one session over one ``play``."""

    name: str
    requests: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0                # batch executed but pipeline faulted
    base_iterations: int = 0       # base iterations delivered to clients
    macro_iterations: int = 0      # fresh steady iterations executed
    invocations: int = 0           # executor invocations (incl. fill)
    busy_ms: float = 0.0           # simulated GPU time spent
    unbatched_baseline_ms: float = 0.0
    batches: list[BatchRecord] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def batch_count(self) -> int:
        return len(self.batches)

    @property
    def mean_batch_requests(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.requests for b in self.batches) / len(self.batches)

    @property
    def batching_speedup(self) -> float:
        """Simulated-throughput gain over per-request execution."""
        if self.busy_ms <= 0.0:
            return float("inf") if self.unbatched_baseline_ms > 0 else 1.0
        return self.unbatched_baseline_ms / self.busy_ms

    def latency_percentiles(self) -> dict[str, float]:
        return {f"p{q:g}": percentile(self.latencies_ms, q)
                for q in (50.0, 95.0, 99.0)}


@dataclass
class ServeReport:
    """Outcome of one workload replay."""

    responses: list[Response]
    sessions: dict[str, SessionReport]
    duration_ms: float

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r.ok)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses
                   if r.status == STATUS_REJECTED)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.responses
                   if r.status == STATUS_FAILED)

    def describe(self) -> str:
        lines = [f"{'session':<12} {'req':>5} {'ok':>5} {'shed':>5} "
                 f"{'fail':>5} "
                 f"{'batches':>7} {'req/batch':>9} {'speedup':>8} "
                 f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8}"]
        for name in sorted(self.sessions):
            s = self.sessions[name]
            p = s.latency_percentiles()
            lines.append(
                f"{name:<12} {s.requests:>5} {s.served:>5} {s.shed:>5} "
                f"{s.failed:>5} "
                f"{s.batch_count:>7} {s.mean_batch_requests:>9.1f} "
                f"{s.batching_speedup:>7.1f}x "
                f"{p['p50']:>8.3f} {p['p95']:>8.3f} {p['p99']:>8.3f}")
        lines.append(f"total: {len(self.responses)} requests, "
                     f"{self.served} served, {self.shed} shed, "
                     f"{self.failed} failed, "
                     f"{self.duration_ms:.3f} simulated ms")
        return "\n".join(lines)


@dataclass
class _SessionSpec:
    name: str
    graph: StreamGraph
    policy: BatchPolicy
    options: Optional[CompileOptions]


class StreamServer:
    """Registry of served pipelines plus the simulated event loop."""

    def __init__(self, *, policy: Optional[BatchPolicy] = None,
                 options: Optional[CompileOptions] = None,
                 jobs: Optional[int] = None, cache=None,
                 exec_backend: Optional[str] = None) -> None:
        self.default_policy = policy or BatchPolicy()
        self.default_options = options
        self.jobs = jobs
        self.cache = cache
        self.exec_backend = exec_backend
        self._specs: dict[str, _SessionSpec] = {}
        self._batchers: dict[str, DynamicBatcher] = {}
        self._order: list[str] = []       # registration = rotation order
        self._rr = 0                      # round-robin pointer
        self._started = False
        self._shut_down = False

    # ------------------------------------------------------------------
    def register(self, name: str, graph: StreamGraph, *,
                 policy: Optional[BatchPolicy] = None,
                 options: Optional[CompileOptions] = None) -> None:
        """Declare a pipeline to serve (compiled at :meth:`start`)."""
        if self._started:
            raise ServeError("register() must precede start()")
        if name in self._specs:
            raise ServeError(f"pipeline {name!r} already registered")
        self._specs[name] = _SessionSpec(
            name=name, graph=graph, policy=policy or self.default_policy,
            options=options or self.default_options)
        self._order.append(name)

    def start(self) -> None:
        """Compile every registered pipeline, fanning the compiles out
        over the shared worker pool; sessions come up warm-ready."""
        if self._started:
            raise ServeError("server already started")
        if not self._specs:
            raise ServeError("no pipelines registered")

        def build(spec: _SessionSpec) -> PipelineSession:
            return PipelineSession(spec.name, spec.graph,
                                   options=spec.options, jobs=self.jobs,
                                   cache=self.cache,
                                   exec_backend=self.exec_backend)

        specs = [self._specs[name] for name in self._order]
        sessions = parallel_map(build, specs, jobs=self.jobs,
                                label="serve-compile")
        for spec, session in zip(specs, sessions):
            self._batchers[spec.name] = DynamicBatcher(session,
                                                       spec.policy)
        self._started = True

    def session(self, name: str) -> PipelineSession:
        return self._batchers[name].session

    @property
    def sessions(self) -> dict[str, PipelineSession]:
        return {name: b.session for name, b in self._batchers.items()}

    def shutdown(self) -> None:
        """Close every session; later ``play`` calls are refused.
        ``play`` itself always drains its queues before returning, so
        shutting down after a replay never abandons queued work."""
        for batcher in self._batchers.values():
            batcher.queue.close()
            batcher.session.close()
        self._shut_down = True

    # ------------------------------------------------------------------
    def play(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Replay a workload through the event loop; every submitted
        request yields exactly one response (served, typed-rejected, or
        typed-failed when its batch hit a pipeline fault), and all
        queues drain before the report is returned."""
        if not self._started:
            raise ServeError("call start() before play()")
        if self._shut_down:
            raise SessionClosed("server has shut down")
        telemetry = obs.is_enabled()
        arrivals = sorted(
            enumerate(requests),
            key=lambda pair: (pair[1].arrival_ms, pair[0]))
        ordered = [
            ServeRequest(pipeline=r.pipeline, tenant=r.tenant,
                         iterations=r.iterations,
                         arrival_ms=r.arrival_ms, request_id=i)
            for i, (_, r) in enumerate(arrivals)]
        reports = {name: SessionReport(name=name) for name in self._order}
        responses: list[Response] = []
        clock = 0.0
        next_arrival = 0
        batch_counter = 0

        def shed(request: ServeRequest, error: ServeError,
                 reason: str, at_ms: float) -> None:
            """Record one typed rejection (never a silent drop)."""
            reports[request.pipeline].shed += 1
            if telemetry:
                obs.counter("serve.shed", session=request.pipeline,
                            reason=reason).add(1)
            responses.append(Response(
                request=request, status=STATUS_REJECTED,
                completed_ms=at_ms, error=error))

        def admit_until(now: float) -> None:
            nonlocal next_arrival
            while next_arrival < len(ordered) \
                    and ordered[next_arrival].arrival_ms <= now:
                request = ordered[next_arrival]
                next_arrival += 1
                batcher = self._batchers.get(request.pipeline)
                if batcher is None:
                    error = ServeError(
                        f"unknown pipeline {request.pipeline!r}; "
                        f"serving: {sorted(self._batchers)}")
                    responses.append(Response(
                        request=request, status=STATUS_REJECTED,
                        completed_ms=request.arrival_ms, error=error))
                    continue
                report = reports[request.pipeline]
                report.requests += 1
                if telemetry:
                    obs.counter("serve.requests",
                                session=request.pipeline).add(1)
                breaker = batcher.breaker
                if not breaker.allows(request.arrival_ms):
                    # Circuit open: shed at admission instead of
                    # queueing behind a failing pipeline.
                    shed(request, SessionUnhealthy(
                        f"session {request.pipeline!r} circuit breaker "
                        f"open after {breaker.consecutive_failures} "
                        f"consecutive failures; request "
                        f"{request.request_id} shed",
                        session=request.pipeline, tenant=request.tenant,
                        failures=breaker.consecutive_failures,
                        retry_after_ms=breaker.retry_after_ms(
                            request.arrival_ms)),
                        "unhealthy", request.arrival_ms)
                    continue
                try:
                    batcher.queue.admit(request)
                except ServerOverloaded as overloaded:
                    shed(request, overloaded, overloaded.reason,
                         request.arrival_ms)
                if telemetry:
                    obs.gauge("serve.queue_depth",
                              session=request.pipeline) \
                        .set(batcher.queue.depth)

        def shed_expired(now: float) -> None:
            """Per-request deadlines: purge queued requests that can no
            longer be dispatched within their latency contract."""
            for name in self._order:
                batcher = self._batchers[name]
                deadline = batcher.policy.request_deadline_ms
                if deadline is None or not batcher.queue.depth:
                    continue
                for request in batcher.queue.purge_expired(now, deadline):
                    shed(request, ServerOverloaded(
                        f"session {name!r}: request "
                        f"{request.request_id} missed its "
                        f"{deadline:g} ms deadline "
                        f"(queued {now - request.arrival_ms:g} ms)",
                        session=name, tenant=request.tenant,
                        reason="deadline",
                        queue_depth=batcher.queue.depth), "deadline", now)

        while True:
            admit_until(clock)
            shed_expired(clock)
            ready = [name for name in self._order
                     if self._batchers[name].queue.depth]
            if not ready:
                if next_arrival >= len(ordered):
                    break
                clock = max(clock, ordered[next_arrival].arrival_ms)
                continue

            # When is each ready session willing to dispatch?
            dispatch_at = {}
            for name in ready:
                batcher = self._batchers[name]
                deadline = batcher.wait_deadline_ms()
                if batcher.batch_is_full() or clock >= deadline:
                    dispatch_at[name] = clock
                else:
                    dispatch_at[name] = deadline
            now_ready = [name for name in ready
                         if dispatch_at[name] <= clock]
            if not now_ready:
                horizon = min(dispatch_at.values())
                if next_arrival < len(ordered):
                    horizon = min(horizon,
                                  ordered[next_arrival].arrival_ms)
                clock = horizon
                continue

            # Round-robin among dispatchable sessions.
            name = self._pick(now_ready)
            batcher = self._batchers[name]
            batch = batcher.form_batch()
            session = batcher.session
            report = reports[name]
            duration = 0.0
            try:
                cycles = session.batch_cycles(batch.new_macro_iterations)
                duration = session.ms(cycles)
                new_macro, invocations = session.advance_to(
                    batch.through_base)
            except ReproError as fault:
                # The pipeline faulted while executing the batch: every
                # request in it gets a typed ``failed`` response, the
                # breaker records the failure, and — once it trips —
                # the queue is purged so nothing waits behind a broken
                # executor.
                completed = clock + duration
                report.failed += len(batch.requests)
                if telemetry:
                    obs.counter("serve.failed", session=name,
                                error=type(fault).__name__) \
                        .add(len(batch.requests))
                for request in batch.requests:
                    responses.append(Response(
                        request=request, status=STATUS_FAILED,
                        completed_ms=completed,
                        latency_ms=completed - request.arrival_ms,
                        error=fault))
                if batcher.breaker.record_failure(completed):
                    for dropped in batcher.queue.drain():
                        shed(dropped, SessionUnhealthy(
                            f"session {name!r} circuit breaker opened "
                            f"while request {dropped.request_id} was "
                            f"queued",
                            session=name, tenant=dropped.tenant,
                            failures=batcher
                            .breaker.consecutive_failures,
                            retry_after_ms=batcher.breaker
                            .retry_after_ms(completed)),
                            "unhealthy", completed)
                if telemetry:
                    obs.gauge("serve.queue_depth", session=name) \
                        .set(batcher.queue.depth)
                clock = completed
                continue
            batcher.breaker.record_success(clock + duration)
            completed = clock + duration

            record = BatchRecord(
                index=batch_counter, session=name,
                requests=len(batch.requests),
                base_iterations=batch.base_iterations,
                macro_iterations=new_macro,
                invocations=invocations, started_ms=clock,
                duration_ms=duration, cycles=cycles,
                tenants=batch.tenants)
            batch_counter += 1
            report.batches.append(record)
            report.macro_iterations += new_macro
            report.invocations += invocations
            report.busy_ms += duration
            for request, (start, count) in zip(batch.requests,
                                               batch.windows):
                outputs = session.outputs_for(start, count)
                latency = completed - request.arrival_ms
                report.served += 1
                report.base_iterations += count
                report.latencies_ms.append(latency)
                report.unbatched_baseline_ms += session.ms(
                    session.unbatched_request_cycles(count))
                responses.append(Response(
                    request=request, status=STATUS_OK, outputs=outputs,
                    start_iteration=start, completed_ms=completed,
                    latency_ms=latency, batch_index=record.index))
            if telemetry:
                obs.counter("serve.batches", session=name).add(1)
                obs.histogram("serve.batch_requests", session=name) \
                    .record(len(batch.requests))
                obs.histogram("serve.batch_iterations", session=name) \
                    .record(new_macro)
                for latency in report.latencies_ms[-len(batch.requests):]:
                    obs.histogram("serve.latency_ms", session=name) \
                        .record(latency)
                obs.gauge("serve.queue_depth", session=name) \
                    .set(batcher.queue.depth)
            clock = completed

        responses.sort(key=lambda r: r.request.request_id)
        if len(responses) != len(ordered):  # pragma: no cover - invariant
            raise ServeError(
                f"response accounting broken: {len(ordered)} requests, "
                f"{len(responses)} responses")
        return ServeReport(responses=responses, sessions=reports,
                           duration_ms=clock)

    # ------------------------------------------------------------------
    def _pick(self, candidates: list[str]) -> str:
        """Next dispatchable session in registration rotation order."""
        order = self._order
        for step in range(len(order)):
            name = order[(self._rr + step) % len(order)]
            if name in candidates:
                self._rr = (order.index(name) + 1) % len(order)
                return name
        raise ServeError("no dispatchable session")  # pragma: no cover
