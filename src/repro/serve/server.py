"""Multi-tenant serving front end: registry, event loop, reporting.

A :class:`StreamServer` owns several :class:`PipelineSession`\\ s (one
per registered graph), compiles them concurrently over the shared
:mod:`repro.parallel` worker pool at :meth:`start`, and serves a
workload — a list of timestamped :class:`ServeRequest`\\ s — through a
deterministic discrete-event loop in *simulated* time:

1. arrivals are admitted (or shed, with typed rejections) the moment
   the simulated clock reaches them;
2. each session's dynamic batcher decides when its next batch is
   dispatchable — immediately when full, otherwise when the oldest
   queued request's ``max_wait_ms`` grace expires;
3. the single simulated GPU executes one batch at a time; sessions
   take turns round-robin when several are dispatchable, so one hot
   pipeline cannot starve the others.

Every simulated millisecond comes from the GPU timing model via the
sessions' cycle accounting; no wall-clock time is involved, so a
workload replays bit-identically.  ``play`` returns a
:class:`ServeReport` with per-session batching/latency/shedding
statistics; the same numbers flow into :mod:`repro.obs` metrics
(queue depth gauge, batch-size and latency histograms, shed counters)
when the observability layer is enabled.

Telemetry rides the same loop.  With :mod:`repro.obs` enabled, every
request gets a trace id and emits causally-linked lifecycle events
(admit → dispatch → batch fire → respond, plus shed/retry/breaker/
degradation events from the layers underneath); with rolling-window
monitoring on (obs enabled, or an ``--slo`` spec configured), windowed
counters/histograms accumulate over the *simulated* clock — monotone
across successive ``play`` calls via ``_sim_base_ms`` — and a
:class:`~repro.obs.slo.SloMonitor` judges each session at every window
-bucket boundary.  :meth:`StreamServer.health_snapshot` is the
machine-readable health endpoint, :meth:`StreamServer.openmetrics` the
scrapable text exposition, and :meth:`StreamServer.dashboard` the
``repro top`` frame.  With everything off, the loop pays one boolean
check per site — the PR 1/PR 5 zero-overhead contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from .. import obs
from ..obs.slo import SloMonitor, SloSpec, render_dashboard
from ..obs.windows import DEFAULT_BUCKETS, WindowRegistry
from ..compiler import CompileOptions
from ..errors import (
    ServeError,
    ServerOverloaded,
    SessionClosed,
    SessionUnhealthy,
)
from ..graph.graph import StreamGraph
from ..parallel import parallel_map
from .batcher import BatchPolicy, DynamicBatcher
from .request import (
    STATUS_FAILED,
    STATUS_REJECTED,
    BatchRecord,
    Response,
    ServeRequest,
)
from .session import PipelineSession
from .shard import PlayContext, Shard


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def session_window_stats(windows: WindowRegistry, name: str,
                         now_ms: float) -> dict:
    """One session's rolling-window signals at ``now_ms`` — the exact
    dict shape SLO metrics are extracted from (shared by the single-
    GPU server and the fleet)."""
    requests = windows.counter("serve.requests",
                               session=name).total(now_ms)
    served_counter = windows.counter("serve.served", session=name)
    served = served_counter.total(now_ms)
    failed = windows.counter("serve.failed",
                             session=name).total(now_ms)
    shed = windows.counter("serve.shed", session=name).total(now_ms)
    finished = served + failed
    return {
        "requests": requests,
        "served": served,
        "failed": failed,
        "shed": shed,
        "throughput_rps": served_counter.rate_per_s(now_ms),
        "error_rate": failed / finished if finished else 0.0,
        "shed_rate": shed / requests if requests else 0.0,
        "latency_ms": windows.histogram(
            "serve.latency_ms", session=name).stats(now_ms),
    }


@dataclass
class SessionReport:
    """Serving statistics of one session over one ``play``."""

    name: str
    requests: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0                # batch executed but pipeline faulted
    base_iterations: int = 0       # base iterations delivered to clients
    macro_iterations: int = 0      # fresh steady iterations executed
    invocations: int = 0           # executor invocations (incl. fill)
    busy_ms: float = 0.0           # simulated GPU time spent
    unbatched_baseline_ms: float = 0.0
    batches: list[BatchRecord] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def batch_count(self) -> int:
        return len(self.batches)

    @property
    def mean_batch_requests(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.requests for b in self.batches) / len(self.batches)

    @property
    def batching_speedup(self) -> float:
        """Simulated-throughput gain over per-request execution."""
        if self.busy_ms <= 0.0:
            return float("inf") if self.unbatched_baseline_ms > 0 else 1.0
        return self.unbatched_baseline_ms / self.busy_ms

    def latency_percentiles(self) -> dict[str, float]:
        return {f"p{q:g}": percentile(self.latencies_ms, q)
                for q in (50.0, 95.0, 99.0)}


@dataclass
class ServeReport:
    """Outcome of one workload replay."""

    responses: list[Response]
    sessions: dict[str, SessionReport]
    duration_ms: float

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r.ok)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses
                   if r.status == STATUS_REJECTED)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.responses
                   if r.status == STATUS_FAILED)

    def describe(self) -> str:
        lines = [f"{'session':<12} {'req':>5} {'ok':>5} {'shed':>5} "
                 f"{'fail':>5} "
                 f"{'batches':>7} {'req/batch':>9} {'speedup':>8} "
                 f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8}"]
        for name in sorted(self.sessions):
            s = self.sessions[name]
            p = s.latency_percentiles()
            lines.append(
                f"{name:<12} {s.requests:>5} {s.served:>5} {s.shed:>5} "
                f"{s.failed:>5} "
                f"{s.batch_count:>7} {s.mean_batch_requests:>9.1f} "
                f"{s.batching_speedup:>7.1f}x "
                f"{p['p50']:>8.3f} {p['p95']:>8.3f} {p['p99']:>8.3f}")
        lines.append(f"total: {len(self.responses)} requests, "
                     f"{self.served} served, {self.shed} shed, "
                     f"{self.failed} failed, "
                     f"{self.duration_ms:.3f} simulated ms")
        return "\n".join(lines)


@dataclass
class _SessionSpec:
    name: str
    graph: StreamGraph
    policy: BatchPolicy
    options: Optional[CompileOptions]


class StreamServer:
    """Registry of served pipelines plus the simulated event loop."""

    def __init__(self, *, policy: Optional[BatchPolicy] = None,
                 options: Optional[CompileOptions] = None,
                 jobs: Optional[int] = None, cache=None,
                 exec_backend: Optional[str] = None,
                 slo: Union[str, SloSpec, None] = None,
                 window_ms: float = 1.0,
                 window_buckets: int = DEFAULT_BUCKETS) -> None:
        self.default_policy = policy or BatchPolicy()
        self.default_options = options
        self.jobs = jobs
        self.cache = cache
        self.exec_backend = exec_backend
        self._specs: dict[str, _SessionSpec] = {}
        self._batchers: dict[str, DynamicBatcher] = {}
        self._order: list[str] = []       # registration = rotation order
        #: The single shard unit this server drives synchronously (the
        #: fleet server drives N of them with overlapping timelines).
        self._shard = Shard(shard_id=0, batchers=self._batchers)
        self._started = False
        self._shut_down = False
        # -- telemetry state (inert unless obs or an SLO is on) --------
        #: Rolling-window instruments over the simulated clock.
        self.windows = WindowRegistry(window_ms, window_buckets)
        self.slo_spec = SloSpec.parse(slo)
        self.slo_monitor = (SloMonitor(self.slo_spec)
                            if self.slo_spec is not None else None)
        #: Simulated ms served before the current ``play`` — keeps the
        #: window clock monotone across successive replays.
        self._sim_base_ms = 0.0
        #: The window clock's latest reading (health-snapshot "now").
        self._now_ms = 0.0

    # ------------------------------------------------------------------
    def register(self, name: str, graph: StreamGraph, *,
                 policy: Optional[BatchPolicy] = None,
                 options: Optional[CompileOptions] = None) -> None:
        """Declare a pipeline to serve (compiled at :meth:`start`)."""
        if self._started:
            raise ServeError("register() must precede start()")
        if name in self._specs:
            raise ServeError(f"pipeline {name!r} already registered")
        self._specs[name] = _SessionSpec(
            name=name, graph=graph, policy=policy or self.default_policy,
            options=options or self.default_options)
        self._order.append(name)

    def start(self) -> None:
        """Compile every registered pipeline, fanning the compiles out
        over the shared worker pool; sessions come up warm-ready."""
        if self._started:
            raise ServeError("server already started")
        if not self._specs:
            raise ServeError("no pipelines registered")

        def build(spec: _SessionSpec) -> PipelineSession:
            return PipelineSession(spec.name, spec.graph,
                                   options=spec.options, jobs=self.jobs,
                                   cache=self.cache,
                                   exec_backend=self.exec_backend)

        specs = [self._specs[name] for name in self._order]
        sessions = parallel_map(build, specs, jobs=self.jobs,
                                label="serve-compile")
        for spec, session in zip(specs, sessions):
            self._batchers[spec.name] = DynamicBatcher(session,
                                                       spec.policy)
            self._shard.dispatcher.register(spec.name)
        self._started = True

    def session(self, name: str) -> PipelineSession:
        return self._batchers[name].session

    @property
    def sessions(self) -> dict[str, PipelineSession]:
        return {name: b.session for name, b in self._batchers.items()}

    def shutdown(self) -> None:
        """Close every session; later ``play`` calls are refused.
        ``play`` itself always drains its queues before returning, so
        shutting down after a replay never abandons queued work."""
        for batcher in self._batchers.values():
            batcher.queue.close()
            batcher.session.close()
        self._shut_down = True

    # ------------------------------------------------------------------
    def play(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Replay a workload through the event loop; every submitted
        request yields exactly one response (served, typed-rejected, or
        typed-failed when its batch hit a pipeline fault), and all
        queues drain before the report is returned."""
        if not self._started:
            raise ServeError("call start() before play()")
        if self._shut_down:
            raise SessionClosed("server has shut down")
        telemetry = obs.is_enabled()
        monitor = self.slo_monitor
        # Rolling windows and SLO evaluation run whenever either obs
        # or an SLO spec is on; with both off the loop only pays the
        # boolean checks below (the zero-overhead contract).
        monitoring = telemetry or monitor is not None
        arrivals = sorted(
            enumerate(requests),
            key=lambda pair: (pair[1].arrival_ms, pair[0]))
        ordered = [
            ServeRequest(pipeline=r.pipeline, tenant=r.tenant,
                         iterations=r.iterations,
                         arrival_ms=r.arrival_ms, request_id=i,
                         trace_id=((r.trace_id or f"req-{i:06d}")
                                   if monitoring else r.trace_id))
            for i, (_, r) in enumerate(arrivals)]
        reports = {name: SessionReport(name=name) for name in self._order}
        responses: list[Response] = []
        clock = 0.0
        next_arrival = 0
        # The window clock stays monotone across plays: this replay's
        # simulated ms stack on top of everything served before it.
        base = self._sim_base_ms
        eval_ms = self.windows.window_ms / self.windows.buckets
        slo_epoch = int(base // eval_ms)

        def tick(now_clock: float) -> None:
            """Advance the window clock; judge SLOs at bucket turns."""
            nonlocal slo_epoch
            now = base + now_clock
            self._now_ms = now
            epoch = int(now // eval_ms)
            if monitor is not None and epoch != slo_epoch:
                slo_epoch = epoch
                self._eval_slo(now, telemetry)

        def shed(request: ServeRequest, error: ServeError,
                 reason: str, at_ms: float) -> None:
            """Record one typed rejection (never a silent drop)."""
            reports[request.pipeline].shed += 1
            if telemetry:
                obs.counter("serve.shed", session=request.pipeline,
                            reason=reason).add(1)
                obs.emit("shed", ts_ms=base + at_ms,
                         trace_id=request.trace_id or None,
                         session=request.pipeline, tenant=request.tenant,
                         reason=reason)
            if monitoring:
                self.windows.counter(
                    "serve.shed", session=request.pipeline) \
                    .add(base + at_ms)
            # Through ctx.respond (resolved at call time, after the
            # PlayContext below exists) so every terminal response —
            # served, failed, shed — leaves by the same door.
            ctx.respond(Response(
                request=request, status=STATUS_REJECTED,
                completed_ms=at_ms, error=error))

        def admit_until(now: float) -> None:
            nonlocal next_arrival
            while next_arrival < len(ordered) \
                    and ordered[next_arrival].arrival_ms <= now:
                request = ordered[next_arrival]
                next_arrival += 1
                batcher = self._batchers.get(request.pipeline)
                if batcher is None:
                    error = ServeError(
                        f"unknown pipeline {request.pipeline!r}; "
                        f"serving: {sorted(self._batchers)}")
                    ctx.respond(Response(
                        request=request, status=STATUS_REJECTED,
                        completed_ms=request.arrival_ms, error=error))
                    continue
                report = reports[request.pipeline]
                report.requests += 1
                if telemetry:
                    obs.counter("serve.requests",
                                session=request.pipeline).add(1)
                if monitoring:
                    self.windows.counter(
                        "serve.requests", session=request.pipeline) \
                        .add(base + request.arrival_ms)
                breaker = batcher.breaker
                if not breaker.allows(request.arrival_ms):
                    # Circuit open: shed at admission instead of
                    # queueing behind a failing pipeline.
                    shed(request, SessionUnhealthy(
                        f"session {request.pipeline!r} circuit breaker "
                        f"open after {breaker.consecutive_failures} "
                        f"consecutive failures; request "
                        f"{request.request_id} shed",
                        session=request.pipeline, tenant=request.tenant,
                        failures=breaker.consecutive_failures,
                        retry_after_ms=breaker.retry_after_ms(
                            request.arrival_ms)),
                        "unhealthy", request.arrival_ms)
                    continue
                try:
                    batcher.queue.check_capacity(request)
                except ServerOverloaded as overloaded:
                    shed(request, overloaded, overloaded.reason,
                         request.arrival_ms)
                else:
                    # Admission accepted: claim the request's stream
                    # window *now*, in arrival order — pinning the
                    # request -> window mapping regardless of how
                    # batches later form (and, in the fleet, of shard
                    # count or stealing).  Rejected requests never
                    # claim, so no window is wasted on them.
                    request = replace(
                        request,
                        window_start=batcher.session.claim(
                            request.iterations))
                    batcher.queue.admit(request)
                    if telemetry:
                        obs.emit("admit",
                                 ts_ms=base + request.arrival_ms,
                                 trace_id=request.trace_id or None,
                                 session=request.pipeline,
                                 tenant=request.tenant,
                                 queue_depth=batcher.queue.depth)
                if telemetry:
                    obs.gauge("serve.queue_depth",
                              session=request.pipeline) \
                        .set(batcher.queue.depth)

        def shed_expired(now: float) -> None:
            """Per-request deadlines: purge queued requests that can no
            longer be dispatched within their latency contract."""
            for name in self._order:
                batcher = self._batchers[name]
                deadline = batcher.policy.request_deadline_ms
                if deadline is None or not batcher.queue.depth:
                    continue
                for request in batcher.queue.purge_expired(now, deadline):
                    shed(request, ServerOverloaded(
                        f"session {name!r}: request "
                        f"{request.request_id} missed its "
                        f"{deadline:g} ms deadline "
                        f"(queued {now - request.arrival_ms:g} ms)",
                        session=name, tenant=request.tenant,
                        reason="deadline",
                        queue_depth=batcher.queue.depth), "deadline", now)

        ctx = PlayContext(reports=reports, responses=responses,
                          telemetry=telemetry, monitoring=monitoring,
                          windows=self.windows, base=base, shed=shed)

        while True:
            admit_until(clock)
            shed_expired(clock)
            if monitoring:
                tick(clock)
            plan = self._shard.dispatch_plan(clock)
            if not plan:
                if next_arrival >= len(ordered):
                    break
                clock = max(clock, ordered[next_arrival].arrival_ms)
                continue
            now_ready = [name for name, at in plan.items()
                         if at <= clock]
            if not now_ready:
                horizon = min(plan.values())
                if next_arrival < len(ordered):
                    horizon = min(horizon,
                                  ordered[next_arrival].arrival_ms)
                clock = horizon
                continue

            # Fair (least-recently-dispatched) pick; the single GPU
            # executes the batch synchronously, so its completion is
            # landed immediately and the clock jumps to it.
            name = self._shard.pick(now_ready)
            self._shard.begin_batch(name, clock, ctx)
            clock = self._shard.busy_until
            self._shard.complete_flight(ctx)
            if monitoring:
                tick(clock)

        if monitoring:
            # Close the books: a final SLO evaluation at the replay's
            # end, so short runs that never cross a bucket boundary
            # still get judged.
            self._now_ms = base + clock
            if monitor is not None:
                self._eval_slo(self._now_ms, telemetry)
        self._sim_base_ms = base + clock
        responses.sort(key=lambda r: r.request.request_id)
        if len(responses) != len(ordered):  # pragma: no cover - invariant
            raise ServeError(
                f"response accounting broken: {len(ordered)} requests, "
                f"{len(responses)} responses")
        return ServeReport(responses=responses, sessions=reports,
                           duration_ms=clock)

    # -- telemetry endpoints -------------------------------------------
    def _window_stats(self, name: str, now_ms: float) -> dict:
        """One session's rolling-window signals at ``now_ms`` — the
        exact dict shape the SLO metrics are extracted from."""
        return session_window_stats(self.windows, name, now_ms)

    def _eval_slo(self, now_ms: float, telemetry: bool) -> None:
        """Judge every objective against every session's live window."""
        monitor = self.slo_monitor
        if monitor is None:
            return
        for name in self._order:
            stats = self._window_stats(name, now_ms)
            for verdict in monitor.evaluate(name, stats, now_ms):
                if not telemetry:
                    continue
                obs.emit("slo_eval", ts_ms=now_ms, session=name,
                         objective=str(verdict.objective),
                         ok=verdict.ok, observed=verdict.observed,
                         burn_rate=verdict.burn_rate)
                if verdict.ok is False:
                    obs.emit("slo_breach", ts_ms=now_ms, session=name,
                             objective=str(verdict.objective),
                             observed=verdict.observed,
                             burn_rate=verdict.burn_rate)

    def health_snapshot(self) -> dict:
        """Machine-readable health endpoint: per-session rolling-window
        signals, breaker state, queue depth, and SLO verdicts, all at
        the window clock's latest reading.  JSON-safe (empty latency
        windows report ``empty: true`` instead of fake percentiles)."""
        now_ms = self._now_ms
        monitor = self.slo_monitor
        sessions = {}
        for name in self._order:
            batcher = self._batchers.get(name)
            row: dict = {
                "queue_depth": batcher.queue.depth if batcher else 0,
                "window": self._window_stats(name, now_ms),
                "slo": (monitor.session_rows(name)
                        if monitor is not None else []),
            }
            if batcher is not None:
                breaker = batcher.breaker
                row["breaker"] = {
                    "state": breaker.state,
                    "consecutive_failures":
                        breaker.consecutive_failures,
                    "trips": breaker.trips,
                }
            sessions[name] = row
        return {
            "now_ms": now_ms,
            "window_ms": self.windows.window_ms,
            "spec": (str(self.slo_spec)
                     if self.slo_spec is not None else None),
            "slo_ok": (monitor.healthy()
                       if monitor is not None else None),
            "sessions": sessions,
        }

    def openmetrics(self) -> str:
        """OpenMetrics-style text exposition of the all-time registry
        plus this server's rolling windows and SLO state."""
        monitor = self.slo_monitor
        return obs.openmetrics(
            window_snapshot=self.windows.snapshot(self._now_ms),
            slo_snapshot=(monitor.snapshot()
                          if monitor is not None else None))

    def dashboard(self) -> str:
        """One ``repro top``-style text frame of the current health."""
        return render_dashboard(self.health_snapshot())
