"""Minimum initiation interval bounds: ResMII and RecMII.

The paper's II search starts from ``max(ResMII, RecMII)`` (Section V-B).

* **ResMII** — resource bound: total steady-state work divided by the
  number of SMs; no schedule can beat it because constraint (2) packs
  every instance's delay into one SM's II budget.
* **RecMII** — recurrence bound: the maximum cycle ratio
  ``sum(delay) / sum(distance)`` over cycles of the instance-level
  dependence graph, computed by parametric binary search with
  Bellman–Ford positive-cycle detection.  The paper notes RecMII was 0
  for every benchmark (no feedback loops, no stateful filters); the
  general computation is here so feedback programs schedule correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from .problem import ScheduleProblem


@dataclass(frozen=True)
class MiiReport:
    res_mii: float
    rec_mii: float

    @property
    def lower_bound(self) -> float:
        return max(self.res_mii, self.rec_mii)


def res_mii(problem: ScheduleProblem) -> float:
    """Resource-constrained lower bound on the II."""
    per_sm = problem.total_work / problem.num_sms
    # No SM can run an instance faster than its own delay either.
    longest = max(problem.delays)
    # A stateful filter's instances serialize on one SM, so its whole
    # per-iteration work bounds the II (the future-work extension).
    state_chain = max(
        (problem.firings[v] * problem.delays[v]
         for v in range(problem.num_nodes) if problem.stateful[v]),
        default=0.0)
    return max(per_sm, longest, state_chain)


def rec_mii(problem: ScheduleProblem) -> float:
    """Recurrence-constrained lower bound on the II.

    Returns 0.0 for acyclic programs.  Raises :class:`SchedulingError`
    for a zero-distance cycle (a deadlocked program: a dependence cycle
    within a single steady-state iteration).
    """
    if not _node_graph_has_cycle(problem):
        return 0.0
    deps = problem.all_dependences()
    instance_ids = {inst: i for i, inst in enumerate(problem.instances())}
    edges = []
    for dep in deps:
        src = instance_ids[(dep.edge.src, dep.k_prime)]
        dst = instance_ids[(dep.edge.dst, dep.k)]
        latency = problem.delays[dep.edge.src]
        edges.append((src, dst, latency, dep.distance))
    n = len(instance_ids)

    total_delay = sum(problem.delays[v] * k
                      for v, k in zip(range(problem.num_nodes),
                                      problem.firings))
    # A positive cycle at lambda beyond any possible ratio means a
    # zero-distance cycle: structurally unschedulable.
    if _has_positive_cycle(n, edges, total_delay + 1.0):
        raise SchedulingError(
            "dependence cycle with zero iteration distance: the program "
            "deadlocks (a feedback loop lacks initial tokens)")

    low, high = 0.0, total_delay + 1.0
    for _ in range(64):
        mid = (low + high) / 2
        if _has_positive_cycle(n, edges, mid):
            low = mid
        else:
            high = mid
        if high - low < 1e-9 * max(1.0, high):
            break
    return high


def compute_mii(problem: ScheduleProblem) -> MiiReport:
    return MiiReport(res_mii=res_mii(problem), rec_mii=rec_mii(problem))


# ----------------------------------------------------------------------
def _node_graph_has_cycle(problem: ScheduleProblem) -> bool:
    adjacency: dict[int, set[int]] = {v: set()
                                      for v in range(problem.num_nodes)}
    for edge in problem.edges:
        adjacency[edge.src].add(edge.dst)
    state = [0] * problem.num_nodes  # 0 unvisited, 1 on stack, 2 done
    for start in range(problem.num_nodes):
        if state[start]:
            continue
        stack = [(start, iter(adjacency[start]))]
        state[start] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if state[child] == 1:
                    return True
                if state[child] == 0:
                    state[child] = 1
                    stack.append((child, iter(adjacency[child])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return False


def _has_positive_cycle(num_nodes: int, edges, lam: float) -> bool:
    """Bellman–Ford: does any cycle have sum(latency - lam*dist) > 0?"""
    # Maximize path weights from a virtual source connected to all.
    dist = [0.0] * num_nodes
    for _ in range(num_nodes):
        changed = False
        for src, dst, latency, distance in edges:
            weight = latency - lam * distance
            if dist[src] + weight > dist[dst] + 1e-12:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    # One more relaxation round: improvement implies a positive cycle.
    for src, dst, latency, distance in edges:
        weight = latency - lam * distance
        if dist[src] + weight > dist[dst] + 1e-12:
            return True
    return False
