"""Buffer layout optimization (paper Section IV-D, eqs. 9-11).

The natural FIFO order stores thread ``tid``'s ``n``-th token at
``tid * rate + n`` — threads of a half-warp then hit the same DRAM bank
and nothing coalesces (Fig. 8).  The paper's layout shuffles tokens so
each *cluster* of 128 threads (the gcd of all candidate block sizes)
reads and writes ``WarpBase + tid`` contiguous words (Fig. 9):

* eq. (10): the ``n``-th pop of thread ``tid`` at pop rate ``o`` sits at
  ``128*n + (tid//128)*128*o + (tid % 128)``;
* eq. (11): same shape for pushes at push rate ``u``;
* eq. (9): only the very first input buffer of the graph must be
  physically shuffled — interior channels stay consistent because both
  endpoints use the transformed index maps.

This module implements the index maps, the boundary shuffle, the
per-channel buffer sizing, and verification helpers (bijection and
coalescing) used by tests and by the CUDA code generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import CodegenError
from ..gpu.device import DeviceConfig

#: The thread-cluster size of eq. (9)-(11): the gcd of the candidate
#: block sizes {128, 256, 384, 512} the paper profiles with.
CLUSTER = 128


def pop_index(tid: int, n: int, rate: int, cluster: int = CLUSTER) -> int:
    """Eq. (10): buffer index of the ``n``-th element popped by ``tid``."""
    if not 0 <= n < rate:
        raise CodegenError(f"pop slot {n} out of range for rate {rate}")
    if tid < 0:
        raise CodegenError("thread id must be non-negative")
    return cluster * n + (tid // cluster) * cluster * rate + tid % cluster


def push_index(tid: int, m: int, rate: int, cluster: int = CLUSTER) -> int:
    """Eq. (11): buffer index of the ``m``-th element pushed by ``tid``."""
    return pop_index(tid, m, rate, cluster)


def natural_index(tid: int, n: int, rate: int) -> int:
    """The sequential FIFO layout of Fig. 8 (for the SWPNC baseline)."""
    if not 0 <= n < rate:
        raise CodegenError(f"slot {n} out of range for rate {rate}")
    return tid * rate + n


def shuffle_permutation(steady_rate: int,
                        cluster: int = CLUSTER) -> list[int]:
    """Eq. (9): the permutation applied to the graph's first input
    buffer.

    ``shuffle[i]`` gives the *natural-order* index whose token must be
    stored at optimized-layout position ``i``, over one steady-state's
    worth of tokens (``steady_rate`` must be a multiple of the cluster
    size, which it is by construction: every thread count is a multiple
    of 128).
    """
    if steady_rate <= 0 or steady_rate % cluster:
        raise CodegenError(
            f"steady rate {steady_rate} must be a positive multiple of "
            f"the cluster size {cluster}")
    rate = steady_rate // cluster
    # Position i in the optimized layout corresponds to (tid, slot):
    # invert eq. (10) over one cluster: i = 128*n + (j mod 128) with
    # the paper's closed form.
    return [
        (i // cluster) + (i % cluster) * rate
        for i in range(steady_rate)
    ]


def apply_shuffle(tokens: Sequence, cluster: int = CLUSTER) -> list:
    """Physically shuffle the graph's boundary input (eq. 9)."""
    perm = shuffle_permutation(len(tokens), cluster)
    return [tokens[p] for p in perm]


def inverse_shuffle(tokens: Sequence, cluster: int = CLUSTER) -> list:
    """Undo :func:`apply_shuffle` (used on the graph's output boundary)."""
    perm = shuffle_permutation(len(tokens), cluster)
    out = [None] * len(tokens)
    for position, source in enumerate(perm):
        out[source] = tokens[position]
    return out


def layout_is_bijective(rate: int, threads: int,
                        cluster: int = CLUSTER) -> bool:
    """Check eq. (10) maps (tid, slot) 1:1 onto [0, threads*rate)."""
    seen = set()
    for tid in range(threads):
        for slot in range(rate):
            index = pop_index(tid, slot, rate, cluster)
            if index in seen or not 0 <= index < threads * rate:
                return False
            seen.add(index)
    return len(seen) == threads * rate


@dataclass(frozen=True)
class ChannelBuffer:
    """Sizing of one channel's device buffer."""

    name: str
    tokens: int
    bytes: int
    layout: str  # "shuffled" or "natural"


def swp_buffer_requirements(problem_edges, names, peak_footprints,
                            device: DeviceConfig,
                            coarsening: int = 1,
                            coalesced: bool = True) -> list[ChannelBuffer]:
    """Per-channel buffers for a software-pipelined schedule.

    ``peak_footprints`` are the exact live-token footprints measured by
    the functional executor (one entry per edge, at SWP1 granularity);
    coarsening multiplies the *steady traffic* but not the primed
    history, so the footprint scales accordingly.  Buffers are padded to
    a whole cluster so the shuffled layout applies.
    """
    buffers = []
    for edge, footprint in zip(problem_edges, peak_footprints):
        steady = footprint - edge.initial_tokens
        tokens = edge.initial_tokens + max(0, steady) * coarsening
        padded = math.ceil(max(1, tokens) / CLUSTER) * CLUSTER
        buffers.append(ChannelBuffer(
            name=f"{names[edge.src]}->{names[edge.dst]}",
            tokens=padded,
            bytes=padded * device.token_bytes,
            layout="shuffled" if coalesced else "natural"))
    return buffers


def total_buffer_bytes(buffers: Sequence[ChannelBuffer]) -> int:
    """Total allocation (paper Table II reports this per benchmark;
    "No buffer sharing is performed in all our schemes")."""
    return sum(b.bytes for b in buffers)


def analytic_channel_footprints(schedule, problem) -> list[int]:
    """Predict per-channel peak live tokens from the schedule's stages.

    Tokens for steady iteration ``j`` are written by producer instances
    at invocations ``j + f_producer`` and consumed at ``j + f_consumer``,
    so a channel holds roughly ``(max_f_consumer - min_f_producer + 1)``
    iterations' worth of traffic plus its primed history.  The functional
    executor measures the exact value; this closed form tracks it (the
    test suite asserts agreement) and is what the benchmark harness uses
    when token-level execution would be too slow.
    """
    footprints = []
    for edge in problem.edges:
        producer_stages = [
            schedule.placement(edge.src, k).stage
            for k in range(problem.firings[edge.src])]
        consumer_stages = [
            schedule.placement(edge.dst, k).stage
            for k in range(problem.firings[edge.dst])]
        span = max(consumer_stages) - min(producer_stages) + 1
        per_iteration = problem.firings[edge.src] * edge.production
        footprints.append(edge.initial_tokens
                          + per_iteration * max(1, span))
    return footprints
