"""Execution configurations: thread-scaled scheduling problems.

After configuration selection (Section IV-A) every node ``v`` of the
stream graph executes with ``t_v`` threads, so one GPU *macro-firing*
of ``v`` performs ``t_v`` consecutive base firings: "the push and pop
rates of the filter executing on the GPU is the base push rate
multiplied by the number of threads chosen to execute the filter"
(Section IV-B).  This module derives the macro-granularity
:class:`~repro.core.problem.ScheduleProblem` from a stream graph plus
an :class:`ExecutionConfig`:

* channel rates scale by the endpoint thread counts,
* the peek *history* (``peek - pop``) is unchanged (threads of a macro
  firing read overlapping windows; the last thread's window reaches
  ``t*pop + (peek - pop)`` deep),
* ``m_uv`` is the post-initialization channel occupancy, and
* the macro steady state is re-solved from the scaled balance
  equations (Alg. 7 line 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Optional

from ..errors import SchedulingError
from ..graph.graph import StreamGraph
from ..graph.init_schedule import compute_init_schedule
from ..graph.nodes import Node
from .problem import EdgeSpec, ScheduleProblem


@dataclass(frozen=True)
class ExecutionConfig:
    """The outcome of configuration selection for one program.

    ``threads[uid]`` / ``delays[uid]`` map node uids to the chosen
    thread count and the profiled per-macro-firing delay (cycles).
    ``register_cap`` is the single compilation-unit-wide register
    restriction (the paper compiles all filters together).
    """

    register_cap: int
    threads: Mapping[int, int]
    delays: Mapping[int, float]
    coalesced: bool = True
    shared_staging: Mapping[int, bool] = field(default_factory=dict)

    def thread_count(self, node: Node) -> int:
        return self.threads[node.uid]

    def delay(self, node: Node) -> float:
        return self.delays[node.uid]

    def uses_shared_staging(self, node: Node) -> bool:
        return bool(self.shared_staging.get(node.uid, False))


def uniform_config(graph: StreamGraph, threads: int = 128,
                   register_cap: int = 32,
                   delay: Optional[float] = None,
                   coalesced: bool = True) -> ExecutionConfig:
    """A trivial configuration (tests and quickstart examples): every
    node gets the same thread count; delays default to a token-count
    heuristic when no profile data is supplied."""
    delays = {}
    for node in graph.nodes:
        if delay is not None:
            delays[node.uid] = delay
        else:
            est = node.estimate
            delays[node.uid] = float(
                10 + est.compute_ops + 2 * est.total_memory_ops)
    return ExecutionConfig(register_cap=register_cap,
                           threads={n.uid: threads for n in graph.nodes},
                           delays=delays, coalesced=coalesced)


@dataclass
class ConfiguredProgram:
    """A stream graph bound to an execution configuration, lowered to a
    solver-ready :class:`ScheduleProblem` with bidirectional node maps.
    """

    graph: StreamGraph
    config: ExecutionConfig
    problem: ScheduleProblem
    node_index: dict[int, int]       # uid -> problem node index
    nodes: list[Node]                # problem node index -> node
    macro_firings: dict[int, int]    # uid -> k_v at macro granularity
    base_iterations_per_macro: int   # original steady iterations / macro

    def index_of(self, node: Node) -> int:
        return self.node_index[node.uid]


def configure_program(graph: StreamGraph, config: ExecutionConfig,
                      num_sms: int, *,
                      allow_stateful: bool = False) -> ConfiguredProgram:
    """Lower ``graph`` + ``config`` to a macro-granularity problem.

    ``allow_stateful`` enables the stateful-filter extension (the
    paper's future work): stateful filters are pinned to one thread —
    their firings cannot execute data-parallel — and the resulting
    problem carries serialization flags the ILP honours.
    """
    graph.validate()
    stateful_filters = graph.stateful_filters()
    if stateful_filters and not allow_stateful:
        names = [f.name for f in stateful_filters]
        raise SchedulingError(
            f"stateful filters are not schedulable by the SWP framework "
            f"(paper Section II-B): {names}; pass allow_stateful=True "
            f"for the serializing extension")
    if stateful_filters:
        stateful_uids = {f.uid for f in stateful_filters}
        threads = dict(config.threads)
        for uid in stateful_uids:
            threads[uid] = 1
        config = ExecutionConfig(register_cap=config.register_cap,
                                 threads=threads, delays=config.delays,
                                 coalesced=config.coalesced,
                                 shared_staging=config.shared_staging)
    for node in graph.nodes:
        if config.threads.get(node.uid, 0) < 1:
            raise SchedulingError(
                f"no thread count configured for node {node.name}")
        if config.delays.get(node.uid, 0) <= 0:
            raise SchedulingError(
                f"no positive delay configured for node {node.name}")

    macro = _solve_macro_rates(graph, config)
    init = compute_init_schedule(graph)

    nodes = list(graph.nodes)
    node_index = {node.uid: i for i, node in enumerate(nodes)}
    edges = []
    for channel in graph.channels:
        t_u = config.threads[channel.src.uid]
        t_v = config.threads[channel.dst.uid]
        production = channel.production_rate * t_u
        consumption = channel.consumption_rate * t_v
        history = channel.peek_depth - channel.consumption_rate
        edges.append(EdgeSpec(
            src=node_index[channel.src.uid],
            dst=node_index[channel.dst.uid],
            production=production,
            consumption=consumption,
            initial_tokens=init.tokens_after_init(channel),
            peek=consumption + history))

    problem = ScheduleProblem(
        names=[n.name for n in nodes],
        firings=[macro[n.uid] for n in nodes],
        delays=[config.delays[n.uid] for n in nodes],
        edges=edges,
        num_sms=num_sms,
        stateful=[n.is_stateful for n in nodes])

    base_iterations = _base_iterations_per_macro(graph, config, macro)
    return ConfiguredProgram(graph=graph, config=config, problem=problem,
                             node_index=node_index, nodes=nodes,
                             macro_firings=macro,
                             base_iterations_per_macro=base_iterations)


def _solve_macro_rates(graph: StreamGraph,
                       config: ExecutionConfig) -> dict[int, int]:
    """Balance equations at macro granularity (Alg. 7 line 7)."""
    rates: dict[int, Fraction] = {graph.nodes[0].uid: Fraction(1)}
    stack = [graph.nodes[0]]
    while stack:
        node = stack.pop()
        rate = rates[node.uid]
        for channel in graph.output_channels(node):
            produced = channel.production_rate * config.threads[node.uid]
            consumed = (channel.consumption_rate
                        * config.threads[channel.dst.uid])
            implied = rate * produced / consumed
            _merge_rate(rates, stack, channel.dst, implied)
        for channel in graph.input_channels(node):
            produced = (channel.production_rate
                        * config.threads[channel.src.uid])
            consumed = channel.consumption_rate * config.threads[node.uid]
            implied = rate * consumed / produced
            _merge_rate(rates, stack, channel.src, implied)
    scale = math.lcm(*(r.denominator for r in rates.values()))
    integral = {uid: int(r * scale) for uid, r in rates.items()}
    shrink = math.gcd(*integral.values())
    return {uid: k // shrink for uid, k in integral.items()}


def _merge_rate(rates, stack, node, implied) -> None:
    existing = rates.get(node.uid)
    if existing is None:
        rates[node.uid] = implied
        stack.append(node)
    elif existing != implied:
        raise SchedulingError(
            f"macro balance equations inconsistent at {node.name}; the "
            f"configured thread counts admit no steady state")


def _base_iterations_per_macro(graph: StreamGraph, config: ExecutionConfig,
                               macro: dict[int, int]) -> int:
    """Original steady iterations covered by one macro steady iteration.

    ``L = k'_v * t_v / k_v`` is the same for every node by balance; it
    relates macro buffers/throughput back to base-granularity terms.
    """
    from ..graph.rates import solve_rates

    base = solve_rates(graph)
    node = graph.nodes[0]
    numerator = macro[node.uid] * config.threads[node.uid]
    k_base = base[node]
    if numerator % k_base:
        # The macro steady state covers a fractional number of base
        # iterations; scale is still consistent, report the ratio's
        # ceiling for buffer purposes.
        return math.ceil(numerator / k_base)
    return numerator // k_base
