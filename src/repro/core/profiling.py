"""Profile execution (paper Fig. 6).

For every node of the stream graph, generate and "run" the profiling
driver on the GPU model: four register budgets x four thread counts,
each executing ``numfirings`` total single-threaded-equivalent firings
(a common multiple of all thread counts, large enough to amortize the
kernel launch).  Infeasible configurations — the kernel cannot launch
because the register file is exhausted — record an infinite time,
exactly as Fig. 6 line 6 does.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Mapping, Optional

from .. import obs
from ..errors import SchedulingError
from ..parallel import parallel_map
from ..graph.graph import StreamGraph
from ..graph.nodes import Node
from ..gpu.device import (
    PROFILE_REGISTER_BUDGETS,
    PROFILE_THREAD_COUNTS,
    DeviceConfig,
)
from ..gpu.simulator import GpuSimulator


def default_numfirings(device: DeviceConfig,
                       multiple: int = 64) -> int:
    """A ``numfirings`` that every profiled thread count divides and
    that spreads work across all SMs many times over."""
    base = math.lcm(*PROFILE_THREAD_COUNTS)
    return base * multiple


@dataclass
class ProfileTable:
    """``runTimes[i][numRegs][numThreads]`` from Fig. 6, plus the
    per-macro-firing delays the ILP consumes."""

    run_times: dict[tuple[int, int, int], float]
    macro_delays: dict[tuple[int, int, int], float]
    numfirings: int
    register_budgets: tuple[int, ...] = PROFILE_REGISTER_BUDGETS
    thread_counts: tuple[int, ...] = PROFILE_THREAD_COUNTS

    def run_time(self, node: Node, regs: int, threads: int) -> float:
        return self.run_times[(node.uid, regs, threads)]

    def macro_delay(self, node: Node, regs: int, threads: int) -> float:
        """Cycles for ONE macro-firing (``threads`` parallel firings on
        one SM) at register cap ``regs``."""
        return self.macro_delays[(node.uid, regs, threads)]

    def feasible(self, node: Node, regs: int, threads: int) -> bool:
        return math.isfinite(self.run_times[(node.uid, regs, threads)])


def profile_graph(graph: StreamGraph, device: DeviceConfig, *,
                  numfirings: int | None = None,
                  coalesced: bool = True,
                  shared_staging: Mapping[int, bool] | None = None,
                  jobs: Optional[int] = None) -> ProfileTable:
    """Run the Fig. 6 profiling loop for every node of ``graph``.

    ``coalesced=False`` profiles the SWPNC variant ("the profile runs
    are also executed without memory access coalescing"), optionally
    with per-node shared-memory staging flags for nodes whose working
    set fits (Section V-B).

    ``jobs`` fans the per-filter loop out over a worker pool: filters
    are profiled independently (Fig. 6's outer loop carries no state
    across filters), and results are merged back in node order, so the
    table is identical for any job count.
    """
    graph.validate()
    firings = numfirings if numfirings is not None \
        else default_numfirings(device)
    for threads in PROFILE_THREAD_COUNTS:
        if firings % threads:
            raise SchedulingError(
                f"numfirings={firings} is not a multiple of profiled "
                f"thread count {threads}")
    staging = dict(shared_staging or {})

    def profile_node(node) -> dict[tuple[int, int, int], tuple[float,
                                                               float]]:
        # One simulator per task: it is stateless beyond the device
        # reference, but constructing locally keeps workers isolated.
        simulator = GpuSimulator(device)
        stage_node = staging.get(node.uid, False)
        entries: dict[tuple[int, int, int], tuple[float, float]] = {}
        for regs in PROFILE_REGISTER_BUDGETS:
            for threads in PROFILE_THREAD_COUNTS:
                total = simulator.profile_filter(
                    node.estimate, threads, regs, firings,
                    coalesced=coalesced,
                    use_shared_staging=stage_node)
                if math.isinf(total):
                    delay = math.inf
                else:
                    iterations = firings // threads
                    per_sm_iterations = math.ceil(
                        iterations / device.num_sms)
                    delay = total / per_sm_iterations
                entries[(node.uid, regs, threads)] = (total, delay)
        if obs.is_enabled():
            obs.counter("profile.filters").add(1)
        return entries

    per_node = parallel_map(profile_node, graph.nodes, jobs=jobs,
                            label="profile")

    run_times: dict[tuple[int, int, int], float] = {}
    macro_delays: dict[tuple[int, int, int], float] = {}
    for entries in per_node:
        for key, (total, delay) in entries.items():
            run_times[key] = total
            macro_delays[key] = delay
    return ProfileTable(run_times=run_times, macro_delays=macro_delays,
                        numfirings=firings)


@dataclass
class HostThroughput:
    """Measured host-side firing throughput of one execution backend.

    This is *wall-clock* profiling of the Python host executing the
    graph — entirely separate from the GPU timing model above, and
    never part of any cached compile artifact.  It is what
    ``benchmarks/bench_exec.py`` and ``repro stats`` report when
    comparing ``--exec-backend`` choices.
    """

    backend: str
    iterations: int
    firings: int
    seconds: float

    @property
    def firings_per_second(self) -> float:
        if self.seconds <= 0.0:
            return float("inf") if self.firings else 0.0
        return self.firings / self.seconds


def profile_host_throughput(graph: StreamGraph, *,
                            iterations: int = 50,
                            warmup_iterations: int = 5,
                            exec_backend: Optional[str] = None,
                            cache=None) -> HostThroughput:
    """Measure steady-state firings/second of ``graph`` on the host
    under the given execution backend.

    Runs ``warmup_iterations`` first on a throwaway interpreter (which
    also pays any kernel-lowering cost), then times ``iterations``
    steady iterations on a fresh one.  The returned firing count is the
    rate-solution total, identical across backends.
    """
    # Lazy import: the interpreter lives above this module in the
    # package graph once repro.exec is in the picture.
    from ..exec import resolve_backend
    from ..runtime.interpreter import Interpreter

    backend = resolve_backend(exec_backend)
    if warmup_iterations > 0:
        Interpreter(graph, exec_backend=backend,
                    cache=cache).run(warmup_iterations)
    interp = Interpreter(graph, exec_backend=backend, cache=cache)
    start = time.perf_counter()
    interp.run(iterations)
    seconds = time.perf_counter() - start
    return HostThroughput(backend=backend, iterations=iterations,
                          firings=len(interp.firing_log),
                          seconds=seconds)


def shared_staging_candidates(graph: StreamGraph,
                              device: DeviceConfig) -> dict[int, bool]:
    """Nodes whose full working set fits shared memory at the *minimum*
    profiled thread count — the SWPNC fallback eligibility test.

    "if the number of threads with which the filter is to be executed
    is such that the working set (the push and the pop set) can fit
    into shared memory, then we bring in the entire working set into
    shared memory using coalesced reads" (Section V-B).
    """
    flags = {}
    min_threads = min(PROFILE_THREAD_COUNTS)
    for node in graph.nodes:
        est = node.estimate
        # Staging targets peeking filters: StreamIt's codegen already
        # materializes their sliding window, and the window overlap
        # between consecutive firings is what makes a cooperative
        # shared-memory copy profitable.  (The two benchmarks the paper
        # reports as rescued by this fallback — Filterbank and FMRadio —
        # are exactly the two with peeking filters.)
        if est.window_overlap <= 0:
            flags[node.uid] = False
            continue
        # The overlap is shared across the block's threads, so the
        # staged footprint is fresh tokens per thread plus one copy of
        # the peek history (plus the output tokens).
        tokens = (est.fresh_loads + est.stores) * min_threads \
            + est.window_overlap
        working_set = tokens * device.token_bytes
        flags[node.uid] = working_set <= device.shared_mem_per_sm
    return flags
