"""Software-pipelined schedule objects and the admissibility checker.

A :class:`Schedule` is the solved form of the paper's ILP: for every
instance ``(v, k)`` the SM assignment ``w``, the intra-kernel offset
``o`` and the pipeline stage ``f``, plus the initiation interval ``T``.
``validate()`` re-checks every constraint of Section III against the
solution — resource budget (2), non-wraparound (4), and the dependence
disjunction (8) including the cross-SM next-iteration rule — so a bug
in either the formulation or a solver backend cannot slip through
silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import SchedulingError
from .problem import ScheduleProblem

#: Numeric slack for float comparisons in the checker.
_TOL = 1e-6


@dataclass(frozen=True)
class Placement:
    """Where and when one instance runs."""

    node: int
    k: int
    sm: int
    offset: float   # o_{k,v}: start time inside the kernel
    stage: int      # f_{k,v}: pipeline stage (iteration displacement)


@dataclass
class Schedule:
    """A complete software-pipelined schedule for a problem."""

    problem: ScheduleProblem
    ii: float
    placements: dict[tuple[int, int], Placement]
    solve_seconds: float = 0.0
    relaxation: float = 0.0   # fraction the II was relaxed above MII
    attempts: int = 1         # ILP attempts in the II search

    def __post_init__(self) -> None:
        expected = set(self.problem.instances())
        if set(self.placements) != expected:
            missing = expected - set(self.placements)
            raise SchedulingError(
                f"schedule incomplete; missing placements for {missing}")

    # ------------------------------------------------------------------
    def placement(self, node: int, k: int) -> Placement:
        return self.placements[(node, k)]

    def sm_of(self, node: int, k: int) -> int:
        return self.placements[(node, k)].sm

    def sm_order(self, sm: int) -> list[Placement]:
        """Instances on ``sm`` in execution order (increasing offset;
        ties broken deterministically by (node, k))."""
        mine = [p for p in self.placements.values() if p.sm == sm]
        return sorted(mine, key=lambda p: (p.offset, p.node, p.k))

    @property
    def max_stage(self) -> int:
        return max(p.stage for p in self.placements.values())

    @property
    def used_sms(self) -> list[int]:
        return sorted({p.sm for p in self.placements.values()})

    def sm_load(self, sm: int) -> float:
        return sum(self.problem.delays[p.node]
                   for p in self.placements.values() if p.sm == sm)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check every ILP constraint; raise on any violation."""
        problem = self.problem
        for placement in self.placements.values():
            if not 0 <= placement.sm < problem.num_sms:
                raise SchedulingError(
                    f"instance ({placement.node},{placement.k}) assigned "
                    f"to nonexistent SM {placement.sm}")
            if placement.offset < -_TOL:
                raise SchedulingError("negative start offset")
            if placement.stage < 0:
                raise SchedulingError("negative pipeline stage")
            # Constraint (4): no wraparound past the II.
            end = placement.offset + problem.delays[placement.node]
            if end > self.ii + _TOL:
                raise SchedulingError(
                    f"instance ({placement.node},{placement.k}) ends at "
                    f"{end:.3f}, past the II {self.ii:.3f}")

        # Constraint (2): per-SM work fits in the II.
        for sm in range(problem.num_sms):
            load = self.sm_load(sm)
            if load > self.ii + _TOL:
                raise SchedulingError(
                    f"SM {sm} is overloaded: {load:.3f} > II {self.ii:.3f}")

        # Stateful extension: serialized same-SM instance chains.
        for v in range(problem.num_nodes):
            if not problem.stateful[v]:
                continue
            kv = problem.firings[v]
            delay = problem.delays[v]
            sms_used = {self.placements[(v, k)].sm for k in range(kv)}
            if len(sms_used) != 1:
                raise SchedulingError(
                    f"stateful filter {problem.names[v]} is spread over "
                    f"SMs {sorted(sms_used)}; its state cannot migrate")
            chain = [self.placements[(v, k)] for k in range(kv)]
            for prev, cur in zip(chain, chain[1:]):
                if (self.ii * cur.stage + cur.offset
                        < self.ii * prev.stage + prev.offset + delay
                        - _TOL):
                    raise SchedulingError(
                        f"stateful filter {problem.names[v]}: instance "
                        f"{cur.k} starts before instance {prev.k} "
                        f"finishes")
            first, last = chain[0], chain[-1]
            if (self.ii * first.stage + first.offset
                    < self.ii * (last.stage - 1) + last.offset + delay
                    - _TOL):
                raise SchedulingError(
                    f"stateful filter {problem.names[v]}: iteration "
                    f"wrap-around violates state serialization")

        # Constraint (8): dependences, with the cross-SM visibility rule.
        for dep in problem.all_dependences():
            consumer = self.placements[(dep.edge.dst, dep.k)]
            producer = self.placements[(dep.edge.src, dep.k_prime)]
            delay_u = problem.delays[dep.edge.src]
            lhs = self.ii * consumer.stage + consumer.offset
            rhs_same = (self.ii * (dep.jlag + producer.stage)
                        + producer.offset + delay_u)
            if lhs < rhs_same - _TOL:
                raise SchedulingError(
                    f"dependence violated: instance "
                    f"({problem.names[dep.edge.dst]},{dep.k}) starts at "
                    f"stage-time {lhs:.3f} before producer "
                    f"({problem.names[dep.edge.src]},{dep.k_prime}) "
                    f"finishes at {rhs_same:.3f}")
            if consumer.sm != producer.sm:
                rhs_cross = self.ii * (dep.jlag + producer.stage + 1)
                if lhs < rhs_cross - _TOL:
                    raise SchedulingError(
                        f"cross-SM dependence violated: consumer "
                        f"({problem.names[dep.edge.dst]},{dep.k}) on SM "
                        f"{consumer.sm} reads data produced on SM "
                        f"{producer.sm} within the same kernel invocation")

    # ------------------------------------------------------------------
    def compact_stages(self) -> "Schedule":
        """Minimize every instance's pipeline stage, holding SM
        assignments and offsets fixed.

        With ``w`` and ``o`` fixed, the constraints on ``f`` are pure
        difference constraints (``f_c - f_p >= delta``), so the
        componentwise-minimal stages are the longest paths from the
        ``f >= 0`` ground — computed exactly by Bellman–Ford.  Shallower
        stages mean fewer live iterations per channel, i.e. smaller
        buffers, without touching the II.
        """
        import math as _math

        problem = self.problem
        instances = list(problem.instances())
        stage = {inst: 0 for inst in instances}
        edges: list[tuple[tuple[int, int], tuple[int, int], int]] = []
        for dep in problem.all_dependences():
            consumer = (dep.edge.dst, dep.k)
            producer = (dep.edge.src, dep.k_prime)
            pc = self.placements[consumer]
            pp = self.placements[producer]
            delay = problem.delays[dep.edge.src]
            delta = dep.jlag + _math.ceil(
                (pp.offset + delay - pc.offset) / self.ii - 1e-9)
            if pc.sm != pp.sm:
                delta = max(delta, dep.jlag + 1)
            edges.append((producer, consumer, delta))
        for v in range(problem.num_nodes):
            if not problem.stateful[v]:
                continue
            kv = problem.firings[v]
            delay = problem.delays[v]
            for k in range(1, kv):
                prev, cur = (v, k - 1), (v, k)
                delta = _math.ceil(
                    (self.placements[prev].offset + delay
                     - self.placements[cur].offset) / self.ii - 1e-9)
                edges.append((prev, cur, delta))
            wrap = _math.ceil(
                (self.placements[(v, kv - 1)].offset + delay
                 - self.placements[(v, 0)].offset) / self.ii - 1e-9) - 1
            edges.append(((v, kv - 1), (v, 0), wrap))

        for _ in range(len(instances) + 1):
            changed = False
            for producer, consumer, delta in edges:
                candidate = stage[producer] + delta
                if candidate > stage[consumer]:
                    stage[consumer] = candidate
                    changed = True
            if not changed:
                break
        else:  # pragma: no cover - impossible for feasible schedules
            raise SchedulingError(
                "stage compaction diverged: positive difference cycle")

        placements = {
            key: Placement(node=p.node, k=p.k, sm=p.sm, offset=p.offset,
                           stage=stage[key])
            for key, p in self.placements.items()}
        compacted = Schedule(problem=problem, ii=self.ii,
                             placements=placements,
                             solve_seconds=self.solve_seconds,
                             relaxation=self.relaxation,
                             attempts=self.attempts)
        compacted.validate()
        return compacted

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"Schedule: II={self.ii:.1f}, stages 0..{self.max_stage}, "
                 f"{len(self.used_sms)} SMs used "
                 f"(relaxation {100 * self.relaxation:.1f}%, "
                 f"{self.attempts} ILP attempts)"]
        for sm in self.used_sms:
            items = ", ".join(
                f"{self.problem.names[p.node]}[{p.k}]@{p.offset:.0f}"
                f"/f{p.stage}" for p in self.sm_order(sm))
            lines.append(f"  SM{sm} (load {self.sm_load(sm):.0f}): {items}")
        return "\n".join(lines)
