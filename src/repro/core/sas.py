"""The Serial baseline: a fully data-parallel Single Appearance Schedule.

Paper Section V: "The Serial scheme is such that every filter is run as
a separate kernel in a SAS schedule.  We fix the number of blocks with
which a filter executes to 16 — the same as the SWP scheme — and set
the number of threads so that the buffer usage is less than or equal to
the SWP scheme compared here, which is SWP8."

Every node is one kernel invocation per sweep, executed over all 16 SMs
with as much data parallelism as the steady state provides; nodes run
in topological order, so a channel's entire sweep production is alive
between the producer's kernel and the consumer's kernel — the SAS
maximum-buffering property.  The sweep batching factor ``rounds`` is
chosen as the largest value whose buffer requirement stays within the
SWP8 budget (the paper's fairness rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SchedulingError
from ..gpu.device import DeviceConfig
from ..gpu.simulator import (
    FilterWork,
    GpuSimulator,
    Kernel,
    RunResult,
    scatter_streams_of,
)
from .configure import ConfiguredProgram


@dataclass
class SasSchedule:
    """A serialized SAS execution plan."""

    program: ConfiguredProgram
    order: list[int]            # problem node indices, topological
    rounds: int                 # macro steady iterations per sweep
    buffer_bytes: int           # peak buffer footprint of one sweep

    @property
    def kernels_per_sweep(self) -> int:
        return len(self.order)


def sas_buffer_bytes(program: ConfiguredProgram, rounds: int,
                     device: DeviceConfig) -> int:
    """Buffer bytes one SAS sweep of ``rounds`` iterations needs.

    Under SAS the producer of every channel completes all its firings
    before the consumer starts, so the channel must hold its entire
    sweep production plus whatever was already buffered.
    """
    total = 0
    for edge in program.problem.edges:
        per_iteration = program.problem.firings[edge.src] * edge.production
        total += (edge.initial_tokens + per_iteration * rounds) \
            * device.token_bytes
    return total


def build_sas_schedule(program: ConfiguredProgram, device: DeviceConfig,
                       buffer_budget_bytes: int | None = None,
                       max_rounds: int = 64) -> SasSchedule:
    """Construct the Serial baseline plan.

    The sweep batching ``rounds`` follows the paper's fairness rule
    twice over: (a) SAS buffers must stay within the SWP schedule's
    buffer budget, and (b) a kernel cannot expose more data parallelism
    than the device accepts — 16 blocks x 512 threads = 8192 concurrent
    base firings per filter kernel ("we fix the number of blocks ... to
    16 and set the number of threads", Section V).
    """
    order = [program.index_of(node)
             for node in program.graph.topological_order()]
    max_parallel = device.num_sms * device.max_threads_per_block
    thread_cap = max_rounds
    for node_idx in order:
        node = program.nodes[node_idx]
        per_round = (program.problem.firings[node_idx]
                     * program.config.threads[node.uid])
        thread_cap = min(thread_cap,
                         max(1, max_parallel // per_round))
    rounds = 1
    if buffer_budget_bytes is not None:
        while (rounds < thread_cap
               and sas_buffer_bytes(program, rounds + 1, device)
               <= buffer_budget_bytes):
            rounds += 1
    return SasSchedule(program=program, order=order, rounds=rounds,
                       buffer_bytes=sas_buffer_bytes(program, rounds,
                                                     device))


def sas_kernels(plan: SasSchedule, device: DeviceConfig, *,
                coalesced: bool = True) -> list[Kernel]:
    """One kernel per node per sweep, data parallel over all SMs."""
    program = plan.program
    kernels = []
    for node_idx in plan.order:
        node = program.nodes[node_idx]
        threads = program.config.threads[node.uid]
        macro_firings = program.problem.firings[node_idx] * plan.rounds
        per_sm = math.ceil(macro_firings / device.num_sms)
        busy_sms = min(device.num_sms, macro_firings)
        work = FilterWork(
            name=node.name,
            estimate=node.estimate,
            threads=threads,
            register_cap=program.config.register_cap,
            coalesced=coalesced,
            use_shared_staging=program.config.uses_shared_staging(node),
            repeat=per_sm,
            stream_label=node.name,
            scatter_streams=scatter_streams_of(node))
        programs = [[work] if sm < busy_sms else []
                    for sm in range(device.num_sms)]
        kernels.append(Kernel(f"sas_{node.name}", programs))
    return kernels


def simulate_sas(plan: SasSchedule, device: DeviceConfig,
                 macro_iterations: int, *,
                 coalesced: bool = True) -> RunResult:
    """Time a Serial execution of ``macro_iterations`` steady iterations."""
    if macro_iterations < 1:
        raise SchedulingError("macro_iterations must be >= 1")
    simulator = GpuSimulator(device)
    kernels = sas_kernels(plan, device, coalesced=coalesced)
    sweeps = math.ceil(macro_iterations / plan.rounds)
    return simulator.simulate_run(kernels, invocations=sweeps)
