"""Execution-configuration selection (paper Algorithm 7 / Fig. 7).

Chooses the globally optimal (register budget, per-filter thread count)
combination from the profile data: for every feasible
``(numRegs, numThreads)`` pair it picks each filter's best thread count
``k <= numThreads``, re-solves the steady state at that configuration,
estimates the resource-constrained II, normalizes by the work one
steady iteration performs, and keeps the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import SchedulingError
from ..graph.graph import StreamGraph
from .configure import ExecutionConfig, _solve_macro_rates
from .profiling import ProfileTable


@dataclass
class PairEvaluation:
    """Diagnostics for one (numRegs, numThreads) candidate pair."""

    register_cap: int
    max_threads: int
    threads: dict[int, int]
    normalized_ii: float


@dataclass
class SelectionResult:
    config: ExecutionConfig
    evaluations: list[PairEvaluation]

    @property
    def best(self) -> PairEvaluation:
        return min(self.evaluations, key=lambda e: e.normalized_ii)


def feasible_pairs(graph: StreamGraph,
                   profile: ProfileTable) -> list[tuple[int, int]]:
    """Pairs feasible for *all* filters (single compilation unit)."""
    pairs = []
    for regs in profile.register_budgets:
        for threads in profile.thread_counts:
            if all(profile.feasible(node, regs, threads)
                   for node in graph.nodes):
                pairs.append((regs, threads))
    return pairs


def select_configuration(graph: StreamGraph, profile: ProfileTable, *,
                         coalesced: bool = True,
                         shared_staging: Mapping[int, bool] | None = None
                         ) -> SelectionResult:
    """Run Algorithm 7 over the profile table."""
    graph.validate()
    pairs = feasible_pairs(graph, profile)
    if not pairs:
        raise SchedulingError(
            "no (registers, threads) pair is feasible for every filter; "
            "the program cannot be compiled as one unit")

    evaluations: list[PairEvaluation] = []
    best: Optional[PairEvaluation] = None
    best_delays: dict[int, float] = {}
    for regs, max_threads in pairs:
        threads: dict[int, int] = {}
        for node in graph.nodes:
            options = [k for k in profile.thread_counts
                       if k <= max_threads
                       and profile.feasible(node, regs, k)]
            # Pair feasibility guarantees max_threads itself works.
            threads[node.uid] = min(
                options, key=lambda k: profile.run_time(node, regs, k))

        config_stub = ExecutionConfig(register_cap=regs, threads=threads,
                                      delays={n.uid: 1.0
                                              for n in graph.nodes})
        instances = _solve_macro_rates(graph, config_stub)

        cur_ii = 0.0
        for node in graph.nodes:
            k = threads[node.uid]
            best_time = profile.run_time(node, regs, k)
            best_time *= instances[node.uid]
            cur_ii += best_time * (k / profile.numfirings)

        work = _steady_state_work(graph, threads, instances)
        normalized = cur_ii / work
        evaluation = PairEvaluation(register_cap=regs,
                                    max_threads=max_threads,
                                    threads=dict(threads),
                                    normalized_ii=normalized)
        evaluations.append(evaluation)
        if best is None or normalized < best.normalized_ii:
            best = evaluation
            best_delays = {
                node.uid: profile.macro_delay(node, regs,
                                              threads[node.uid])
                for node in graph.nodes}

    assert best is not None
    config = ExecutionConfig(register_cap=best.register_cap,
                             threads=best.threads,
                             delays=best_delays,
                             coalesced=coalesced,
                             shared_staging=dict(shared_staging or {}))
    return SelectionResult(config=config, evaluations=evaluations)


def _steady_state_work(graph: StreamGraph, threads: Mapping[int, int],
                       instances: Mapping[int, int]) -> float:
    """Work per steady iteration: tokens arriving at the sink nodes
    ("a simple metric would be the number of tokens produced at the
    sink node", Alg. 7 line 14)."""
    total = 0
    for sink in graph.sinks:
        consumed_per_macro = sum(
            sink.pop_rate(port) for port in range(sink.num_inputs)) \
            * threads[sink.uid]
        total += consumed_per_macro * instances[sink.uid]
    if total == 0:
        raise SchedulingError("steady state moves no tokens into sinks")
    return float(total)
