"""Core: the paper's contribution — ILP software pipelining for GPUs.

Pipeline (paper Fig. 5): profile each filter on the device model
(:mod:`profiling`), select the execution configuration
(:mod:`config_select`, Alg. 7), lower to a macro-granularity scheduling
problem (:mod:`configure`), bound the II (:mod:`mii`), search for the
smallest feasible II with the ILP of Section III
(:mod:`ilp_formulation` + :mod:`iisearch`), and validate/execute the
resulting :class:`~repro.core.schedule.Schedule`.
"""

from .buffers import (
    CLUSTER,
    ChannelBuffer,
    analytic_channel_footprints,
    apply_shuffle,
    inverse_shuffle,
    natural_index,
    pop_index,
    push_index,
    shuffle_permutation,
    swp_buffer_requirements,
    total_buffer_bytes,
)
from .coarsen import coarsen_problem, coarsen_schedule
from .config_select import (
    PairEvaluation,
    SelectionResult,
    feasible_pairs,
    select_configuration,
)
from .configure import (
    ConfiguredProgram,
    ExecutionConfig,
    configure_program,
    uniform_config,
)
from .iisearch import Attempt, IISearchResult, search_ii
from .ilp_formulation import build_model, solve_at_ii, stage_bound
from .mii import MiiReport, compute_mii, rec_mii, res_mii
from .problem import Dependence, EdgeSpec, ScheduleProblem
from .sas import (
    SasSchedule,
    build_sas_schedule,
    sas_buffer_bytes,
    sas_kernels,
    simulate_sas,
)
from .profiling import (
    ProfileTable,
    default_numfirings,
    profile_graph,
    shared_staging_candidates,
)
from .schedule import Placement, Schedule

__all__ = [
    "Attempt",
    "CLUSTER",
    "ChannelBuffer",
    "SasSchedule",
    "analytic_channel_footprints",
    "apply_shuffle",
    "build_sas_schedule",
    "coarsen_problem",
    "coarsen_schedule",
    "inverse_shuffle",
    "natural_index",
    "pop_index",
    "push_index",
    "sas_buffer_bytes",
    "sas_kernels",
    "shuffle_permutation",
    "simulate_sas",
    "swp_buffer_requirements",
    "total_buffer_bytes",
    "ConfiguredProgram",
    "Dependence",
    "EdgeSpec",
    "ExecutionConfig",
    "IISearchResult",
    "MiiReport",
    "PairEvaluation",
    "Placement",
    "ProfileTable",
    "Schedule",
    "ScheduleProblem",
    "SelectionResult",
    "build_model",
    "compute_mii",
    "configure_program",
    "default_numfirings",
    "feasible_pairs",
    "profile_graph",
    "rec_mii",
    "res_mii",
    "search_ii",
    "select_configuration",
    "shared_staging_candidates",
    "solve_at_ii",
    "stage_bound",
    "uniform_config",
]
