"""SWPn schedule coarsening (paper Section V-B, Fig. 11).

"In the SWPn schedule, each instance of a filter is iterated n times to
increase the granularity of the GPU kernel.  This does not affect the
optimality of the schedule, since the delay of each filter is increased
by the same proportion, thereby leaving the work distribution still
uniform."

Coarsening therefore transforms a solved SWP1 schedule directly: every
delay, offset and the II scale by ``n``; assignments and stages are
unchanged.  The executable effect (modeled by the simulator) is that
one kernel invocation now covers ``n`` steady-state iterations, so the
launch overhead is amortized ``n``-fold.
"""

from __future__ import annotations

from ..errors import SchedulingError
from .problem import EdgeSpec, ScheduleProblem
from .schedule import Placement, Schedule


def coarsen_problem(problem: ScheduleProblem, factor: int) -> ScheduleProblem:
    """The problem whose one iteration is ``factor`` base iterations.

    Instances are iterated in place (delays scale); the instance *count*
    is unchanged, matching the paper's SWPn definition.  Edge token
    quantities scale with the factor so buffer accounting stays
    consistent.
    """
    if factor < 1:
        raise SchedulingError(f"coarsening factor must be >= 1: {factor}")
    if factor == 1:
        return problem
    return ScheduleProblem(
        names=list(problem.names),
        firings=list(problem.firings),
        delays=[d * factor for d in problem.delays],
        edges=[EdgeSpec(e.src, e.dst, e.production * factor,
                        e.consumption * factor, e.initial_tokens,
                        e.consumption * factor
                        + (e.peek - e.consumption))
               for e in problem.edges],
        num_sms=problem.num_sms)


def coarsen_schedule(schedule: Schedule, factor: int) -> Schedule:
    """Scale a solved schedule to granularity ``factor`` (SWPn)."""
    if factor < 1:
        raise SchedulingError(f"coarsening factor must be >= 1: {factor}")
    if factor == 1:
        return schedule
    problem = coarsen_problem(schedule.problem, factor)
    placements = {
        key: Placement(node=p.node, k=p.k, sm=p.sm,
                       offset=p.offset * factor, stage=p.stage)
        for key, p in schedule.placements.items()}
    coarse = Schedule(problem=problem, ii=schedule.ii * factor,
                      placements=placements,
                      solve_seconds=schedule.solve_seconds,
                      relaxation=schedule.relaxation,
                      attempts=schedule.attempts)
    coarse.validate()
    return coarse
