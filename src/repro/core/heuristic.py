"""Greedy heuristic modulo scheduler — the middle rung of the ladder.

When the ILP-based II search cannot deliver (solver deadline expired,
search exhausted, injected solver faults), the compiler degrades to
this scheduler instead of failing the whole compile.  It trades II
quality for unconditional, fast termination:

* nodes are visited in a deterministic topological order (cycles broken
  at the smallest node index), so producers tend to land at earlier
  offsets than their consumers;
* every instance goes to the least-loaded SM — except instances of a
  stateful filter, which all follow instance 0's SM so state never
  crosses the inter-SM boundary (the same rule the ILP encodes);
* the II is the maximum per-SM load, offsets are cumulative per SM
  (sequential packing trivially satisfies the per-SM budget and the
  no-wraparound bound);
* pipeline stages are then computed *exactly* by
  :meth:`~repro.core.schedule.Schedule.compact_stages` — with SMs and
  offsets fixed, the stage constraints are pure difference constraints
  and Bellman–Ford yields the componentwise-minimal feasible stages.

The result passes the same :meth:`Schedule.validate` admissibility
checker as an ILP schedule, so the SWP executor runs it unchanged and
produces byte-identical program outputs — only throughput differs.
If even the multi-SM packing has no feasible stage assignment (a
pathological dependence cycle), a single-SM packing is tried before
giving up with a typed :class:`~repro.errors.SchedulingError` (at
which point the compiler's ladder falls through to the SAS serial
schedule).
"""

from __future__ import annotations

from ..errors import SchedulingError
from .mii import compute_mii
from .problem import ScheduleProblem
from .schedule import Placement, Schedule


def _topo_order(problem: ScheduleProblem) -> list[int]:
    """Deterministic topological node order; cycles broken at the
    smallest remaining node index (feedback edges just cost stages)."""
    indegree = [0] * problem.num_nodes
    succs: list[list[int]] = [[] for _ in range(problem.num_nodes)]
    for edge in problem.edges:
        if edge.src == edge.dst:
            continue
        succs[edge.src].append(edge.dst)
        indegree[edge.dst] += 1
    ready = sorted(v for v in range(problem.num_nodes)
                   if indegree[v] == 0)
    remaining = set(range(problem.num_nodes)) - set(ready)
    order: list[int] = []
    while ready or remaining:
        if not ready:  # cycle: break it deterministically
            breaker = min(remaining)
            remaining.discard(breaker)
            ready = [breaker]
        v = ready.pop(0)
        order.append(v)
        for w in succs[v]:
            if w in remaining:
                indegree[w] -= 1
                if indegree[w] == 0:
                    remaining.discard(w)
                    ready.append(w)
        ready.sort()
    return order


def _pack(problem: ScheduleProblem, num_sms: int) -> Schedule:
    """Greedy least-loaded packing onto ``num_sms`` SMs; stages via
    compact_stages (raises SchedulingError when no stages exist)."""
    loads = [0.0] * num_sms
    sm_of: dict[tuple[int, int], int] = {}
    for v in _topo_order(problem):
        delay = problem.delays[v]
        if problem.stateful[v]:
            # All instances on one SM, chosen once by least load.
            target = min(range(num_sms), key=lambda p: (loads[p], p))
            for k in range(problem.firings[v]):
                sm_of[(v, k)] = target
                loads[target] += delay
        else:
            for k in range(problem.firings[v]):
                target = min(range(num_sms),
                             key=lambda p: (loads[p], p))
                sm_of[(v, k)] = target
                loads[target] += delay

    ii = max(loads)
    if ii <= 0:
        raise SchedulingError("heuristic packing produced empty SMs")

    # Sequential per-SM offsets, in the same deterministic order the
    # instances were packed (topological, so producers come early).
    cursor = [0.0] * num_sms
    placements: dict[tuple[int, int], Placement] = {}
    for v in _topo_order(problem):
        for k in range(problem.firings[v]):
            sm = sm_of[(v, k)]
            placements[(v, k)] = Placement(
                node=v, k=k, sm=sm, offset=cursor[sm], stage=0)
            cursor[sm] += problem.delays[v]

    schedule = Schedule(problem=problem, ii=ii, placements=placements)
    # compact_stages recomputes minimal feasible stages from the fixed
    # (sm, offset, ii) and validates the result; it raises when the
    # packing admits no stage assignment at all.
    return schedule.compact_stages()


def heuristic_schedule(problem: ScheduleProblem) -> Schedule:
    """Build a valid (not optimal) modulo schedule without any solver.

    Tries the full SM count first; if that packing has no feasible
    stage assignment, retries with everything on one SM (always
    stage-feasible for problems the SAS path can execute).  Raises
    :class:`SchedulingError` if both fail.
    """
    report = compute_mii(problem)
    last_error: SchedulingError | None = None
    for num_sms in (problem.num_sms, 1):
        if num_sms > problem.num_sms:
            continue
        try:
            schedule = _pack(problem, num_sms)
        except SchedulingError as exc:
            last_error = exc
            continue
        if report.lower_bound > 0:
            schedule.relaxation = schedule.ii / report.lower_bound - 1.0
        schedule.attempts = 0  # no ILP attempts were spent
        return schedule
    raise SchedulingError(
        f"heuristic scheduler found no feasible packing "
        f"({last_error})")


__all__ = ["heuristic_schedule"]
