"""The ILP formulation of Section III, equations (1)–(8).

Variables (names follow the paper):

* ``w[k,v,p]`` ∈ {0,1} — instance ``k`` of filter ``v`` runs on SM ``p``
* ``o[k,v]`` ≥ 0 — start offset of the instance inside the kernel
* ``f[k,v]`` ∈ Z≥0 — pipeline stage (iteration displacement)
* ``g[l,k,u,v]`` ∈ {0,1} — 1 when the producer of the ``l``-class
  dependence sits on a *different* SM than the consumer

Constraints:

* (1) every instance on exactly one SM
* (2) per-SM delay budget ≤ T
* (4) ``o + d(v) ≤ T`` (no wraparound; the paper states the strict form
  but uses the closed form itself — see DESIGN.md)
* (7) ``g ≥ |w_consumer,p − w_producer,p|`` for every SM ``p``
* (8) the dependence disjunction: the producer-finishes-first bound
  always, and the next-iteration bound when ``g = 1``

The model is a pure feasibility problem for a *given* T (the paper's
CPLEX usage); we add a tiny secondary objective — minimize total stages
— to keep pipelines shallow, which reduces buffer requirements without
affecting feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SchedulingError
from ..ilp import Model, Solution, Variable, lin_sum
from .problem import ScheduleProblem
from .schedule import Placement, Schedule


@dataclass
class FormulationVars:
    """Handles to the decision variables, for tests and diagnostics."""

    w: dict[tuple[int, int, int], Variable]
    o: dict[tuple[int, int], Variable]
    f: dict[tuple[int, int], Variable]
    g: dict[tuple[int, int, int, int], Variable]


def stage_bound(problem: ScheduleProblem) -> int:
    """A safe upper bound on pipeline stages.

    Any minimal feasible schedule needs at most one extra stage per
    instance along a dependence chain, plus whatever positive iteration
    lags deep peeking forces.
    """
    max_pos_lag = 0
    for dep in problem.all_dependences():
        max_pos_lag = max(max_pos_lag, dep.jlag)
    return problem.num_instances + max_pos_lag + 2


def build_model(problem: ScheduleProblem,
                ii: float) -> tuple[Model, FormulationVars]:
    """Construct the ILP for initiation interval ``ii``."""
    if ii <= 0:
        raise SchedulingError(f"II must be positive, got {ii}")
    model = Model(f"swp_T={ii:.1f}")
    sms = range(problem.num_sms)
    f_max = stage_bound(problem)

    w: dict[tuple[int, int, int], Variable] = {}
    o: dict[tuple[int, int], Variable] = {}
    f: dict[tuple[int, int], Variable] = {}
    for v, k in problem.instances():
        for p in sms:
            w[k, v, p] = model.binary(f"w[{k},{problem.names[v]},{p}]")
        delay = problem.delays[v]
        if delay > ii:
            raise SchedulingError(
                f"filter {problem.names[v]} has delay {delay:.1f} > II "
                f"{ii:.1f}; no schedule exists at this II")
        # Constraint (4) folded into the variable bound: o ∈ [0, T - d].
        o[k, v] = model.continuous(f"o[{k},{problem.names[v]}]",
                                   lower=0.0, upper=ii - delay)
        f[k, v] = model.integer(f"f[{k},{problem.names[v]}]",
                                lower=0, upper=f_max)
        # Constraint (1): exactly one SM.
        model.add(lin_sum(w[k, v, p] for p in sms).equals(1),
                  name=f"assign[{k},{problem.names[v]}]")

    # Constraint (2): per-SM delay budget.
    for p in sms:
        load = lin_sum(w[k, v, p] * problem.delays[v]
                       for v, k in problem.instances())
        model.add(load <= ii, name=f"budget[SM{p}]")

    # Dependence constraints (7) + (8).
    g: dict[tuple[int, int, int, int], Variable] = {}
    for edge_index, edge in enumerate(problem.edges):
        u, v = edge.src, edge.dst
        for k in range(problem.firings[v]):
            # Keep only the tightest lag per producer instance: larger
            # jlag dominates (same k', bigger RHS).
            best: dict[int, int] = {}
            for k_prime, jlag in problem.dependence_pairs(edge, k):
                if k_prime not in best or jlag > best[k_prime]:
                    best[k_prime] = jlag
            for k_prime, jlag in best.items():
                key = (edge_index, k, k_prime, 0)
                gvar = model.binary(
                    f"g[e{edge_index},{k},{k_prime}]")
                g[key] = gvar
                for p in sms:
                    # Constraint (7): g tracks "different SM".
                    model.add(gvar >= w[k, v, p] - w[k_prime, u, p])
                    model.add(gvar >= w[k_prime, u, p] - w[k, v, p])
                # Constraint (8), first system: producer finishes first.
                model.add(
                    ii * f[k, v] + o[k, v]
                    >= ii * jlag + ii * f[k_prime, u] + o[k_prime, u]
                    + problem.delays[u],
                    name=f"dep[e{edge_index},{k}<-{k_prime}]")
                # Constraint (8), second system: cross-SM data is only
                # visible in the next steady-state iteration.
                model.add(
                    ii * f[k, v] + o[k, v]
                    >= ii * jlag + ii * f[k_prime, u] + ii * gvar,
                    name=f"depx[e{edge_index},{k}<-{k_prime}]")

    # Stateful-filter extension (the paper's future work): instances of
    # a stateful filter serialize on one SM.  Instance k waits for
    # instance k-1 of the same iteration; instance 0 waits for the
    # previous iteration's last instance (distance 1); all instances
    # share the SM of instance 0 so the state never needs cross-SM
    # visibility.
    for v in range(problem.num_nodes):
        if not problem.stateful[v]:
            continue
        kv = problem.firings[v]
        delay = problem.delays[v]
        if kv * delay > ii:
            raise SchedulingError(
                f"stateful filter {problem.names[v]} needs "
                f"{kv * delay:.1f} cycles of serialized work per "
                f"iteration > II {ii:.1f}; no schedule exists")
        for k in range(1, kv):
            for p in sms:
                model.add((w[k, v, p] - w[0, v, p]).equals(0),
                          name=f"state_sm[{k},{problem.names[v]},{p}]")
            model.add(
                ii * f[k, v] + o[k, v]
                >= ii * f[k - 1, v] + o[k - 1, v] + delay,
                name=f"state_chain[{k},{problem.names[v]}]")
        # wrap-around: iteration j's first instance follows iteration
        # (j-1)'s last instance.
        model.add(
            ii * f[0, v] + o[0, v]
            >= ii * (f[kv - 1, v] - 1) + o[kv - 1, v] + delay,
            name=f"state_wrap[{problem.names[v]}]")

    # SM symmetry breaking: the SMs are identical, so force SM p to be
    # used only after some earlier-indexed instance used SM p-1.  Cuts
    # the p! relabelings without excluding any schedule class.
    ordered = list(problem.instances())
    for i, (v, k) in enumerate(ordered):
        for p in range(1, problem.num_sms):
            if i < p:
                model.add(w[k, v, p] <= 0,
                          name=f"sym0[{i},{p}]")
            else:
                earlier = lin_sum(
                    w[kj, vj, p - 1] for vj, kj in ordered[:i])
                model.add(w[k, v, p] <= earlier,
                          name=f"sym[{i},{p}]")

    # Pure feasibility, like the paper's CPLEX usage ("our ILP
    # formulation is a constraint problem, rather than an optimization
    # problem").  Stage depth is minimized exactly afterwards by
    # Schedule.compact_stages (a longest-path pass), which dominates any
    # solver-side secondary objective.
    model.set_objective(0)
    return model, FormulationVars(w=w, o=o, f=f, g=g)


def extract_schedule(problem: ScheduleProblem, ii: float,
                     solution: Solution,
                     variables: FormulationVars) -> Schedule:
    """Turn a feasible ILP solution into a :class:`Schedule`."""
    placements: dict[tuple[int, int], Placement] = {}
    for v, k in problem.instances():
        sm = next(p for p in range(problem.num_sms)
                  if solution.int_value(variables.w[k, v, p]) == 1)
        offset = float(solution.value(variables.o[k, v]))
        if -1e-6 < offset < 0.0:
            # Solver noise on the o >= 0 bound.  Snap to zero so that
            # coarsening (which scales offsets) cannot amplify it past
            # the validator's tolerance.
            offset = 0.0
        placements[(v, k)] = Placement(
            node=v, k=k, sm=sm, offset=offset,
            stage=solution.int_value(variables.f[k, v]))
    schedule = Schedule(problem=problem, ii=ii, placements=placements,
                        solve_seconds=solution.solve_seconds)
    schedule.validate()
    return schedule.compact_stages()


def attempt_at_ii(problem: ScheduleProblem, ii: float, *,
                  backend: str = "highs",
                  time_limit: Optional[float] = None,
                  deadline: Optional[float] = None
                  ) -> tuple[Optional[Schedule], Optional[Solution]]:
    """One ILP attempt at a fixed II, keeping the solver diagnostics.

    Returns ``(schedule, solution)``: the schedule is None when the
    model is infeasible at this II or the solver ran out of time; the
    solution is None only when the model could not even be built (a
    filter delay exceeds the II).  The II search reads node counts and
    solve times off the solution for its per-attempt telemetry.

    ``deadline`` (absolute ``perf_counter`` instant) bounds the whole
    attempt: the solve's time limit is clamped to the remaining wall
    clock and :class:`~repro.errors.SolverTimeout` escapes when it has
    already passed.
    """
    try:
        model, variables = build_model(problem, ii)
    except SchedulingError:
        return None, None  # a delay exceeds the II: trivially infeasible
    gap = 3.0 if backend == "highs" else None
    if gap is None:
        solution = model.solve(backend=backend, time_limit=time_limit,
                               deadline=deadline)
    else:
        # Feasibility problem: accept any incumbent within a huge gap
        # of the (secondary) objective instead of proving optimality.
        solution = model.solve(backend=backend, time_limit=time_limit,
                               mip_rel_gap=gap, deadline=deadline)
    if not solution.status.has_solution:
        return None, solution
    return extract_schedule(problem, ii, solution, variables), solution


def solve_at_ii(problem: ScheduleProblem, ii: float, *,
                backend: str = "highs",
                time_limit: Optional[float] = None) -> Optional[Schedule]:
    """One ILP attempt at a fixed II.

    Returns the validated schedule, or None when the model is
    infeasible at this II or the solver ran out of time.
    """
    schedule, _solution = attempt_at_ii(problem, ii, backend=backend,
                                        time_limit=time_limit)
    return schedule
