"""The software-pipelining scheduling problem (paper Section III-A).

A :class:`ScheduleProblem` is the solver-facing view of a configured
stream program: per-node firing counts ``k_v`` (the steady state),
per-node delays ``d(v)`` (from profiling), per-edge SDF quantities
``O_uv`` / ``I_uv`` / ``m_uv`` (+ peek depth), and the SM count.  It is
deliberately decoupled from :class:`~repro.graph.graph.StreamGraph`, so
the ILP, MII analysis and schedule checker can be unit-tested on tiny
hand-built problems.

The heart of this module is :func:`dependence_pairs` — the paper's
analysis of *which producer instances each consumer instance waits on*
(Fig. 4 and the derivation leading to eq. (8)): for edge ``(u, v)`` and
the ``k``-th instance of ``v``, each required token ``l`` identifies a
producer firing

    a = ceil((k*I_uv + l - m_uv - O_uv) / O_uv)

which decomposes into the producer instance ``k' = a mod k_u`` of
iteration lag ``jlag = floor(a / k_u)``.  We generalize ``l`` from the
paper's range ``[1, I_uv]`` to ``[1, peek_uv]`` so peeking filters are
scheduled soundly (a peeking consumer waits for its full window, not
just the tokens it pops).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import SchedulingError


@dataclass(frozen=True)
class EdgeSpec:
    """One FIFO channel, in solver units (macro-firings)."""

    src: int                   # producer node index u
    dst: int                   # consumer node index v
    production: int            # O_uv: tokens per firing of u
    consumption: int           # I_uv: tokens per firing of v
    initial_tokens: int = 0    # m_uv
    peek: Optional[int] = None  # window depth; defaults to consumption

    def __post_init__(self) -> None:
        if self.production < 1 or self.consumption < 1:
            raise SchedulingError(
                f"edge {self.src}->{self.dst}: rates must be >= 1")
        if self.initial_tokens < 0:
            raise SchedulingError(
                f"edge {self.src}->{self.dst}: negative initial tokens")
        if self.peek is None:
            object.__setattr__(self, "peek", self.consumption)
        if self.peek < self.consumption:
            raise SchedulingError(
                f"edge {self.src}->{self.dst}: peek {self.peek} below "
                f"consumption rate {self.consumption}")


@dataclass
class ScheduleProblem:
    """Inputs to the software-pipelining ILP.

    ``stateful[v]`` marks filters whose firings carry state: their
    instances serialize (instance ``k`` waits for ``k-1``; instance 0
    waits for the previous iteration's last instance) and all instances
    share one SM so the state never crosses the unreliable inter-SM
    boundary.  This implements the paper's "handling stateful filters
    on GPUs is a possible future work" extension.
    """

    names: list[str]
    firings: list[int]          # k_v per node
    delays: list[float]         # d(v) per node, in cycles
    edges: list[EdgeSpec]
    num_sms: int
    stateful: Optional[list[bool]] = None

    def __post_init__(self) -> None:
        n = len(self.names)
        if not (len(self.firings) == len(self.delays) == n):
            raise SchedulingError(
                "names/firings/delays must have equal lengths")
        if n == 0:
            raise SchedulingError("problem has no nodes")
        if self.stateful is None:
            self.stateful = [False] * n
        if len(self.stateful) != n:
            raise SchedulingError("stateful flags must match node count")
        if self.num_sms < 1:
            raise SchedulingError("need at least one SM")
        for k in self.firings:
            if k < 1:
                raise SchedulingError("every node must fire at least once")
        for d in self.delays:
            if d <= 0:
                raise SchedulingError("delays must be positive")
        for edge in self.edges:
            if not (0 <= edge.src < n and 0 <= edge.dst < n):
                raise SchedulingError(f"edge {edge} references unknown node")
            produced = self.firings[edge.src] * edge.production
            consumed = self.firings[edge.dst] * edge.consumption
            if produced != consumed:
                raise SchedulingError(
                    f"edge {self.names[edge.src]}->{self.names[edge.dst]} "
                    f"is unbalanced: {produced} produced vs {consumed} "
                    f"consumed per steady iteration")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.names)

    @property
    def num_instances(self) -> int:
        return sum(self.firings)

    def instances(self) -> Iterable[tuple[int, int]]:
        """All (node, k) instance identifiers."""
        for v in range(self.num_nodes):
            for k in range(self.firings[v]):
                yield (v, k)

    @property
    def total_work(self) -> float:
        return sum(k * d for k, d in zip(self.firings, self.delays))

    # ------------------------------------------------------------------
    def dependence_pairs(self, edge: EdgeSpec,
                         k: int) -> list[tuple[int, int]]:
        """Producer instances the ``k``-th consumer instance depends on.

        Returns deduplicated ``(k_prime, jlag)`` pairs: instance ``k'``
        of the producer, ``jlag`` steady-state iterations earlier
        (``jlag <= 0`` in the common case; positive lags arise for deep
        peeks with no priming and simply force deeper pipelining).

        Producer firings with global index < 0 (the tokens came from
        ``m_uv``) impose no constraint and are dropped.
        """
        if not 0 <= k < self.firings[edge.dst]:
            raise SchedulingError(
                f"instance {k} out of range for node "
                f"{self.names[edge.dst]}")
        ku = self.firings[edge.src]
        # a(l) = ceil((k*I + l - m - O) / O) for l in [1, peek]; since l
        # steps by 1 through a range wider than O covers, a takes every
        # integer between its extremes.
        a_min = math.ceil((k * edge.consumption + 1
                           - edge.initial_tokens - edge.production)
                          / edge.production)
        a_max = math.ceil((k * edge.consumption + edge.peek
                           - edge.initial_tokens - edge.production)
                          / edge.production)
        pairs = []
        seen = set()
        for a in range(a_min, a_max + 1):
            jlag = a // ku
            k_prime = a % ku
            # Dependences on "firing -1 and earlier" of iteration 0 are
            # satisfied by initial tokens for every iteration j only when
            # the *global* producer index j*ku + a is negative for all j.
            # Since the schedule must admit all j >= 0 and the constraint
            # is j-independent, only pairs where a refers to a real
            # firing for some j >= 0 matter; every (k', jlag) does, so we
            # keep them all — except pure-initial-token coverage where
            # a < 0 AND the consumer window never outruns m_uv, i.e. the
            # dependence repeats each iteration shifted by ku and a < 0
            # simply means "previous iteration", encoded by jlag.
            if (k_prime, jlag) not in seen:
                seen.add((k_prime, jlag))
                pairs.append((k_prime, jlag))
        return pairs

    def all_dependences(self) -> list["Dependence"]:
        """Every instance-level dependence in the problem."""
        deps = []
        for edge in self.edges:
            for k in range(self.firings[edge.dst]):
                for k_prime, jlag in self.dependence_pairs(edge, k):
                    deps.append(Dependence(edge, k, k_prime, jlag))
        return deps

    # ------------------------------------------------------------------
    def validate_stateless(self) -> None:
        """Hook for callers: the base problem is always stateless; the
        configure layer raises before building a problem for stateful
        filters (the paper handles only stateless filters)."""

    def describe(self) -> str:
        lines = [f"ScheduleProblem: {self.num_nodes} nodes, "
                 f"{self.num_instances} instances, {len(self.edges)} "
                 f"edges, {self.num_sms} SMs"]
        for v, name in enumerate(self.names):
            lines.append(f"  {name}: k={self.firings[v]} "
                         f"d={self.delays[v]:.1f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Dependence:
    """Instance-level dependence: consumer (edge.dst, k) needs producer
    (edge.src, k_prime) from ``jlag`` iterations earlier."""

    edge: EdgeSpec
    k: int          # consumer instance
    k_prime: int    # producer instance
    jlag: int       # iteration lag (<= 0 usually)

    @property
    def distance(self) -> int:
        """Software-pipelining dependence distance (omega >= 0)."""
        return -self.jlag
