"""The II search driver (paper Section V-B).

"The methodology we used to solve the ILP was to determine the lower
bound on the II as max(ResMII, RecMII).  Once this was done, the solver
was alloted 20 seconds to attempt a solution with this II.  If it failed
to find a solution in 20 seconds, the II is relaxed by 0.5% and the
process is repeated until a feasible solution was found."

We reproduce that loop verbatim (budget and relaxation step are
configurable), recording per-attempt diagnostics so the ILP-efficiency
experiment can report solve times and final relaxation percentages the
way the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Optional

from .. import faults, obs
from ..errors import SchedulingError, SolverTimeout
from ..parallel import parallel_map, resolve_jobs
from .ilp_formulation import attempt_at_ii
from .mii import compute_mii
from .problem import ScheduleProblem
from .schedule import Schedule


@dataclass(frozen=True)
class Attempt:
    """One ILP attempt in the search.

    ``relaxation`` is the fraction this attempt's II sits above the
    search's lower bound; ``nodes`` is the branch-and-bound node count
    the solver reported for the attempt (0 when the model was trivially
    infeasible and never reached a solver).
    """

    ii: float
    feasible: bool
    seconds: float
    relaxation: float = 0.0
    nodes: int = 0


@dataclass
class IISearchResult:
    """Outcome of the II search: the schedule plus solver diagnostics."""

    schedule: Schedule
    mii: float
    attempts: list[Attempt]
    total_seconds: float

    @property
    def relaxation(self) -> float:
        """Fraction above the MII lower bound the final II sits at."""
        if self.mii == 0:
            return 0.0
        return self.schedule.ii / self.mii - 1.0

    @property
    def solver_nodes(self) -> int:
        """Total branch-and-bound nodes across every attempt."""
        return sum(attempt.nodes for attempt in self.attempts)


def relaxation_ladder(lower: float, relaxation_step: float,
                      adaptive: bool) -> Iterator[float]:
    """The deterministic sequence of candidate IIs the search visits.

    Position ``n`` of the ladder assumes positions ``0..n-1`` all
    failed (the search stops at the first success, so the prefix it
    actually visits is always a prefix of this sequence).  With
    ``adaptive`` the step doubles after every four failures.
    """
    ii = lower
    step = relaxation_step
    failures = 0
    while True:
        yield ii
        failures += 1
        if adaptive and failures % 4 == 0:
            step *= 2
        ii = ii * (1.0 + step)


def search_ii(problem: ScheduleProblem, *,
              backend: str = "highs",
              attempt_budget_seconds: float = 20.0,
              relaxation_step: float = 0.005,
              max_attempts: int = 200,
              start_ii: Optional[float] = None,
              adaptive: bool = True,
              jobs: Optional[int] = None,
              search_deadline_seconds: Optional[float] = None
              ) -> IISearchResult:
    """Find the smallest feasible II by the paper's relax-and-retry loop.

    ``start_ii`` overrides the computed MII lower bound (used by tests
    and by coarsening, which scales a known-good II).

    ``adaptive`` doubles the relaxation step after every four
    consecutive infeasible attempts.  The paper's fixed 0.5% step with
    CPLEX is reproduced with ``adaptive=False``; the adaptive schedule
    visits a sparser superset of the same II grid so the search stays
    fast when the resource bound is loose (deep bin-packing gaps, as in
    DES), at the cost of a slightly coarser final II.

    ``jobs`` > 1 evaluates the relaxation ladder *speculatively*: the
    next ``jobs`` candidate IIs solve concurrently on a worker pool,
    and the first feasible candidate **in ladder order** wins, so the
    chosen II (and therefore the schedule) is identical to the serial
    search — speculation only changes wall-clock time.  Speculative
    attempts past the winner are discarded from the diagnostics (the
    serial search would never have run them) and surface only through
    the ``ii_search.speculative_wasted`` counter.

    ``search_deadline_seconds`` is a wall-clock budget for the *whole*
    search (all attempts together, unlike the per-attempt
    ``attempt_budget_seconds``).  When it expires before any feasible
    schedule was found the search raises a typed
    :class:`~repro.errors.SolverTimeout` — the signal the compiler's
    degradation ladder descends on.  Injected solver timeouts
    (``solver.timeout`` fault site) charge the full attempt budget
    against this deadline so chaos runs expire it deterministically
    without burning real wall-clock time.
    """
    report = compute_mii(problem)
    lower = start_ii if start_ii is not None else report.lower_bound
    if lower <= 0:
        raise SchedulingError("II lower bound must be positive")

    started = time.perf_counter()
    workers = resolve_jobs(jobs)
    telemetry = obs.is_enabled()
    injecting = faults.is_active()
    fault_tag = "|".join(problem.names)
    deadline_at = None if search_deadline_seconds is None \
        else started + search_deadline_seconds

    def run_attempt(ii: float) -> tuple[Attempt, Optional[Schedule]]:
        relaxation = (ii / lower - 1.0) if lower else 0.0
        if injecting:
            key = f"{fault_tag}@{ii:.6g}"
            if faults.should("solver.timeout", key):
                # Behaves exactly like a real per-attempt timeout
                # (status-based: the ladder relaxes and retries), and
                # reports the full budget as spent so the overall
                # search deadline is consumed deterministically.
                return Attempt(ii=ii, feasible=False,
                               seconds=attempt_budget_seconds,
                               relaxation=relaxation), None
            if faults.should("solver.infeasible", key):
                return Attempt(ii=ii, feasible=False, seconds=0.0,
                               relaxation=relaxation), None
        attempt_start = time.perf_counter()
        with obs.span("ilp_attempt", ii=round(ii, 2), backend=backend):
            schedule, solution = attempt_at_ii(
                problem, ii, backend=backend,
                time_limit=attempt_budget_seconds,
                deadline=deadline_at)
        seconds = time.perf_counter() - attempt_start
        nodes = solution.nodes if solution is not None else 0
        attempt = Attempt(ii=ii, feasible=schedule is not None,
                          seconds=seconds, relaxation=relaxation,
                          nodes=nodes)
        return attempt, schedule

    def finalize(schedule: Schedule,
                 attempts: list[Attempt]) -> IISearchResult:
        final = attempts[-1]
        schedule.relaxation = final.relaxation
        schedule.attempts = len(attempts)
        total = time.perf_counter() - started
        if telemetry:
            obs.gauge("ii_search.final_ii").set(schedule.ii)
            obs.gauge("ii_search.relaxation").set(final.relaxation)
            obs.gauge("ii_search.mii").set(report.lower_bound)
        return IISearchResult(schedule=schedule, mii=report.lower_bound,
                              attempts=attempts, total_seconds=total)

    def record(attempt: Attempt) -> None:
        if telemetry:
            obs.counter("ii_search.attempts").add(1)
            obs.counter("ii_search.solver_nodes").add(attempt.nodes)
            obs.histogram("ii_search.attempt_seconds").record(
                attempt.seconds)

    def check_deadline() -> None:
        """Raise SolverTimeout once the whole-search budget is gone.

        Elapsed time is the larger of the real wall clock and the sum
        of per-attempt charges, so injected timeouts (which report the
        full attempt budget without sleeping) expire the deadline
        deterministically.
        """
        if search_deadline_seconds is None:
            return
        charged = sum(attempt.seconds for attempt in attempts)
        elapsed = max(time.perf_counter() - started, charged)
        if elapsed < search_deadline_seconds:
            return
        if telemetry:
            obs.counter("ilp.deadline_hits", backend=backend).add(1)
        raise SolverTimeout(
            f"II search exceeded its {search_deadline_seconds:.1f}s "
            f"deadline after {len(attempts)} attempts "
            f"(lower bound {lower:.1f})",
            deadline_seconds=search_deadline_seconds,
            elapsed_seconds=elapsed)

    ladder = relaxation_ladder(lower, relaxation_step, adaptive)
    attempts: list[Attempt] = []
    last_ii = lower
    remaining = max_attempts
    while remaining > 0:
        batch = [next(ladder)
                 for _ in range(min(workers, remaining))]
        remaining -= len(batch)
        last_ii = batch[-1]
        outcomes = parallel_map(run_attempt, batch, jobs=workers,
                                label="ilp_attempt")
        for position, (attempt, schedule) in enumerate(outcomes):
            attempts.append(attempt)
            record(attempt)
            if schedule is not None:
                wasted = len(outcomes) - position - 1
                if telemetry and wasted:
                    obs.counter("ii_search.speculative_wasted").add(
                        wasted)
                return finalize(schedule, attempts)
            check_deadline()
    raise SchedulingError(
        f"no feasible schedule found after {max_attempts} II relaxations "
        f"(reached II={last_ii:.1f} from lower bound {lower:.1f})")
