"""The II search driver (paper Section V-B).

"The methodology we used to solve the ILP was to determine the lower
bound on the II as max(ResMII, RecMII).  Once this was done, the solver
was alloted 20 seconds to attempt a solution with this II.  If it failed
to find a solution in 20 seconds, the II is relaxed by 0.5% and the
process is repeated until a feasible solution was found."

We reproduce that loop verbatim (budget and relaxation step are
configurable), recording per-attempt diagnostics so the ILP-efficiency
experiment can report solve times and final relaxation percentages the
way the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..errors import SchedulingError
from .ilp_formulation import attempt_at_ii
from .mii import compute_mii
from .problem import ScheduleProblem
from .schedule import Schedule


@dataclass(frozen=True)
class Attempt:
    """One ILP attempt in the search.

    ``relaxation`` is the fraction this attempt's II sits above the
    search's lower bound; ``nodes`` is the branch-and-bound node count
    the solver reported for the attempt (0 when the model was trivially
    infeasible and never reached a solver).
    """

    ii: float
    feasible: bool
    seconds: float
    relaxation: float = 0.0
    nodes: int = 0


@dataclass
class IISearchResult:
    """Outcome of the II search: the schedule plus solver diagnostics."""

    schedule: Schedule
    mii: float
    attempts: list[Attempt]
    total_seconds: float

    @property
    def relaxation(self) -> float:
        """Fraction above the MII lower bound the final II sits at."""
        if self.mii == 0:
            return 0.0
        return self.schedule.ii / self.mii - 1.0

    @property
    def solver_nodes(self) -> int:
        """Total branch-and-bound nodes across every attempt."""
        return sum(attempt.nodes for attempt in self.attempts)


def search_ii(problem: ScheduleProblem, *,
              backend: str = "highs",
              attempt_budget_seconds: float = 20.0,
              relaxation_step: float = 0.005,
              max_attempts: int = 200,
              start_ii: Optional[float] = None,
              adaptive: bool = True) -> IISearchResult:
    """Find the smallest feasible II by the paper's relax-and-retry loop.

    ``start_ii`` overrides the computed MII lower bound (used by tests
    and by coarsening, which scales a known-good II).

    ``adaptive`` doubles the relaxation step after every four
    consecutive infeasible attempts.  The paper's fixed 0.5% step with
    CPLEX is reproduced with ``adaptive=False``; the adaptive schedule
    visits a sparser superset of the same II grid so the search stays
    fast when the resource bound is loose (deep bin-packing gaps, as in
    DES), at the cost of a slightly coarser final II.
    """
    report = compute_mii(problem)
    lower = start_ii if start_ii is not None else report.lower_bound
    if lower <= 0:
        raise SchedulingError("II lower bound must be positive")

    attempts: list[Attempt] = []
    started = time.perf_counter()
    ii = lower
    step = relaxation_step
    consecutive_failures = 0
    telemetry = obs.is_enabled()
    for _ in range(max_attempts):
        attempt_start = time.perf_counter()
        with obs.span("ilp_attempt", ii=round(ii, 2), backend=backend):
            schedule, solution = attempt_at_ii(
                problem, ii, backend=backend,
                time_limit=attempt_budget_seconds)
        seconds = time.perf_counter() - attempt_start
        nodes = solution.nodes if solution is not None else 0
        relaxation = (ii / lower - 1.0) if lower else 0.0
        attempts.append(Attempt(ii=ii, feasible=schedule is not None,
                                seconds=seconds, relaxation=relaxation,
                                nodes=nodes))
        if telemetry:
            obs.counter("ii_search.attempts").add(1)
            obs.counter("ii_search.solver_nodes").add(nodes)
            obs.histogram("ii_search.attempt_seconds").record(seconds)
        if schedule is not None:
            schedule.relaxation = relaxation
            schedule.attempts = len(attempts)
            total = time.perf_counter() - started
            if telemetry:
                obs.gauge("ii_search.final_ii").set(schedule.ii)
                obs.gauge("ii_search.relaxation").set(relaxation)
                obs.gauge("ii_search.mii").set(report.lower_bound)
            return IISearchResult(schedule=schedule,
                                  mii=report.lower_bound,
                                  attempts=attempts, total_seconds=total)
        consecutive_failures += 1
        if adaptive and consecutive_failures % 4 == 0:
            step *= 2
        ii = ii * (1.0 + step)
    raise SchedulingError(
        f"no feasible schedule found after {max_attempts} II relaxations "
        f"(reached II={ii:.1f} from lower bound {lower:.1f})")
