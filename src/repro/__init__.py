"""repro — reproduction of "Software Pipelined Execution of Stream
Programs on GPUs" (Udupa, Govindarajan, Thazhuthaveetil; CGO 2009).

The package compiles StreamIt-style stream programs onto a simulated
NVIDIA GeForce 8800-class GPU via ILP-based software pipelining, with a
coalescing-friendly buffer layout, and reproduces the paper's full
experimental evaluation.

Top-level convenience imports cover the common workflow::

    from repro import Pipeline, Filter, flatten
"""

from . import degrade, faults
from .degrade import DegradationEvent, DegradationReport
from .errors import (
    CacheError,
    CodegenError,
    ConfigError,
    FaultSpecError,
    GpuSmFault,
    GraphError,
    IlpError,
    InfeasibleError,
    LanguageError,
    RateError,
    ReproError,
    SchedulingError,
    ServeError,
    SimulationError,
    SolverTimeout,
    TransientFault,
)
from .graph import (
    Channel,
    FeedbackLoop,
    Filter,
    Joiner,
    Pipeline,
    SplitJoin,
    SplitKind,
    Splitter,
    SteadyState,
    StreamGraph,
    WorkEstimate,
    flatten,
    solve_rates,
)

from .compiler import (
    CompileOptions,
    CompiledProgram,
    compile_stream_program,
    compile_swp_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "CacheError",
    "Channel",
    "CodegenError",
    "CompileOptions",
    "CompiledProgram",
    "ConfigError",
    "DegradationEvent",
    "DegradationReport",
    "FaultSpecError",
    "GpuSmFault",
    "compile_stream_program",
    "compile_swp_sweep",
    "degrade",
    "faults",
    "FeedbackLoop",
    "Filter",
    "GraphError",
    "IlpError",
    "InfeasibleError",
    "Joiner",
    "LanguageError",
    "Pipeline",
    "RateError",
    "ReproError",
    "SchedulingError",
    "ServeError",
    "SimulationError",
    "SolverTimeout",
    "TransientFault",
    "SplitJoin",
    "SplitKind",
    "Splitter",
    "SteadyState",
    "StreamGraph",
    "WorkEstimate",
    "flatten",
    "solve_rates",
    "__version__",
]
