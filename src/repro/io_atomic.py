"""Crash-safe file writes shared by the cache and the durable layer.

The compile cache has always written entries with the classic
temp-file + ``os.replace`` dance so concurrent readers never observe a
half-written entry.  Atomicity alone is not *durability*, though: an
``os.replace`` that was never fsync'd can vanish (or resurrect the old
content) after a power loss, because neither the file's data nor the
directory entry that names it were forced to stable storage.  The
write-ahead journal and checkpoint store added for crash-consistent
serving need the stronger contract, so the full pattern lives here:

1. write the payload to a uniquely named temp file *in the target
   directory* (same filesystem, so the rename is atomic);
2. flush and ``fsync`` the temp file — the bytes are on disk;
3. ``os.replace`` it over the target — readers switch atomically;
4. ``fsync`` the containing directory — the *name* is on disk.

``fsync_path`` is best-effort on platforms that cannot open
directories (Windows): the rename is still atomic there, matching the
cache's historical guarantee.

Nothing in this module knows about fault injection; callers that want
``faults.maybe_io_error`` semantics inject *before* calling in, so a
single injected ``OSError`` maps to one failed logical write.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_handle",
    "fsync_path",
    "tmp_sibling",
]


def tmp_sibling(path: Path) -> Path:
    """A collision-free temp name next to ``path`` (same directory, so
    ``os.replace`` never crosses filesystems)."""
    return path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")


def fsync_handle(fileobj) -> None:
    """Flush Python buffers and force ``fileobj``'s bytes to disk."""
    fileobj.flush()
    os.fsync(fileobj.fileno())


def fsync_path(path: Union[str, Path]) -> None:
    """fsync a path (typically a directory, to persist a rename or a
    newly created name).  Best-effort: platforms that cannot open
    directories for reading simply keep the weaker atomic-only
    contract."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       *, durable: bool = True) -> None:
    """Atomically (and, by default, durably) replace ``path`` with
    ``data``.

    Readers racing this call observe either the old content or the new
    content, never a prefix.  With ``durable=True`` the data and the
    rename both survive a crash straight after return.  On any
    ``OSError`` the temp file is removed and the error re-raised — the
    target is untouched either way.
    """
    path = Path(path)
    tmp = tmp_sibling(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if durable:
                fsync_handle(handle)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if durable:
        fsync_path(path.parent)


def atomic_write_text(path: Union[str, Path], text: str,
                      *, durable: bool = True,
                      encoding: str = "utf-8") -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)
