"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystems define more
specific subclasses (graph construction, rate solving, ILP solving,
scheduling, simulation, language front end).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed stream graphs (bad arity, dangling channels...)."""


class RateError(ReproError):
    """Raised when the steady-state balance equations have no solution."""


class IlpError(ReproError):
    """Raised for malformed ILP models or solver failures."""


class InfeasibleError(IlpError):
    """Raised when an ILP model is proven infeasible."""


class SchedulingError(ReproError):
    """Raised when no valid software-pipelined schedule can be constructed."""


class SimulationError(ReproError):
    """Raised for invalid GPU simulator inputs (bad kernels, configs...)."""


class ExecBackendError(ReproError):
    """Raised for an unknown or misconfigured execution backend
    (``--exec-backend`` / ``REPRO_EXEC_BACKEND``)."""


class CodegenError(ReproError):
    """Raised when CUDA code generation encounters an unsupported construct."""


class ServeError(ReproError):
    """Base class for errors from the serving runtime (repro.serve)."""


class ServerOverloaded(ServeError):
    """Typed load-shedding rejection: the request was *not* queued.

    Carries enough context for the client to back off intelligently:
    which session rejected, why (global queue vs per-tenant quota), and
    the queue depth observed at rejection time.
    """

    def __init__(self, message: str, *, session: str = "",
                 tenant: str = "", reason: str = "queue_full",
                 queue_depth: int = 0) -> None:
        super().__init__(message)
        self.session = session
        self.tenant = tenant
        self.reason = reason
        self.queue_depth = queue_depth


class SessionClosed(ServeError):
    """Raised when work is submitted to a drained/shut-down session."""


class LanguageError(ReproError):
    """Base class for errors from the StreamIt-like language front end."""


class LexError(LanguageError):
    """Raised on invalid tokens in source text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised on syntax errors."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(LanguageError):
    """Raised on semantic analysis failures (undefined names, bad rates...)."""
