"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystems define more
specific subclasses (graph construction, rate solving, ILP solving,
scheduling, simulation, language front end).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """Raised for invalid configuration or parameter values.

    Also subclasses :class:`ValueError` so call sites that historically
    caught ``ValueError`` keep working.
    """


class FaultSpecError(ConfigError):
    """Raised for a malformed ``--fault-spec`` / ``REPRO_FAULTS`` value."""


class TransientFault(ReproError):
    """Base class for retryable faults (injected or real).

    The retry-with-backoff machinery in :mod:`repro.faults` only ever
    retries exceptions of this family — arbitrary failures are not
    assumed idempotent.
    """


class WorkerCrash(TransientFault):
    """A worker-pool task died mid-flight (retryable)."""


class WorkerHang(TransientFault):
    """A worker-pool task exceeded its hang-detection deadline
    (retryable; the stuck attempt is abandoned)."""


class TransientFilterFault(TransientFault):
    """One firing of a filter failed transiently (soft error); the
    firing is side-effect-free until its outputs commit, so a bounded
    re-fire is safe."""


class GraphError(ReproError):
    """Raised for malformed stream graphs (bad arity, dangling channels...)."""


class RateError(ReproError):
    """Raised when the steady-state balance equations have no solution."""


class IlpError(ReproError):
    """Raised for malformed ILP models or solver failures."""


class InfeasibleError(IlpError):
    """Raised when an ILP model is proven infeasible."""


class SolverTimeout(IlpError):
    """Raised when a wall-clock deadline expires before the solver (or
    the II search driving it) produced a usable solution.

    Carries the deadline and how much was actually spent, so the
    degradation ladder can report the budget that was exhausted.
    """

    def __init__(self, message: str, *, deadline_seconds: float = 0.0,
                 elapsed_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class SchedulingError(ReproError):
    """Raised when no valid software-pipelined schedule can be constructed."""


class CacheError(ReproError, ValueError):
    """Raised for compile-cache misuse (unknown stage names...).

    Also subclasses :class:`ValueError` so call sites that historically
    caught ``ValueError`` keep working.
    """


class SimulationError(ReproError):
    """Raised for invalid GPU simulator inputs (bad kernels, configs...)."""


class GpuSmFault(SimulationError):
    """A simulated SM error persisted past the bounded relaunch budget."""

    def __init__(self, message: str, *, kernel: str = "",
                 sm: int = -1) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.sm = sm


class ExecBackendError(ReproError):
    """Raised for an unknown or misconfigured execution backend
    (``--exec-backend`` / ``REPRO_EXEC_BACKEND``)."""


class CodegenError(ReproError):
    """Raised when CUDA code generation encounters an unsupported construct."""


class ServeError(ReproError):
    """Base class for errors from the serving runtime (repro.serve)."""


class ServerOverloaded(ServeError):
    """Typed load-shedding rejection: the request was *not* queued.

    Carries enough context for the client to back off intelligently:
    which session rejected, why (global queue vs per-tenant quota), and
    the queue depth observed at rejection time.
    """

    def __init__(self, message: str, *, session: str = "",
                 tenant: str = "", reason: str = "queue_full",
                 queue_depth: int = 0) -> None:
        super().__init__(message)
        self.session = session
        self.tenant = tenant
        self.reason = reason
        self.queue_depth = queue_depth


class SessionClosed(ServeError):
    """Raised when work is submitted to a drained/shut-down session."""


class SessionUnhealthy(ServeError):
    """Typed circuit-breaker rejection: the session's pipeline has been
    failing and the breaker is open, so the request was shed at
    admission instead of queuing behind a broken executor.

    ``retry_after_ms`` tells the client when the breaker will admit a
    half-open probe (simulated clock).
    """

    def __init__(self, message: str, *, session: str = "",
                 tenant: str = "", failures: int = 0,
                 retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.session = session
        self.tenant = tenant
        self.failures = failures
        self.retry_after_ms = retry_after_ms


class JournalError(ServeError):
    """Raised when the write-ahead request journal cannot uphold its
    contract: an append to a closed journal, a record that fails its
    checksum *before* the torn tail, or a replay that contradicts the
    exactly-once bookkeeping."""


class CheckpointError(ServeError):
    """Raised when a checkpoint cannot be written, or when recovery
    finds no valid checkpoint/manifest state to restore from."""


class ProcessCrash(ReproError):
    """An injected whole-process death (the ``process.crash`` fault
    site).  Deliberately *not* a :class:`TransientFault`: nothing
    in-process may retry past it — the only recovery path is a fresh
    process restoring from durable state.

    ``crashpoint`` names the durable-write boundary that died (see the
    crashpoint catalog in docs/robustness.md).
    """

    def __init__(self, message: str, *, crashpoint: str = "") -> None:
        super().__init__(message)
        self.crashpoint = crashpoint


class LanguageError(ReproError):
    """Base class for errors from the StreamIt-like language front end."""


class LexError(LanguageError):
    """Raised on invalid tokens in source text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised on syntax errors."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(LanguageError):
    """Raised on semantic analysis failures (undefined names, bad rates...)."""
