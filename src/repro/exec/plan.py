"""Execution-backend selection and per-graph kernel plans.

A :class:`ExecPlan` is built once per executor from the flattened
graph and the selected backend:

``interp``
    No plan at all (executors keep their original code paths and pay
    zero overhead — the reference semantics).
``compiled``
    Every stateless DSL filter whose work AST lowers cleanly gets a
    specialized Python closure (:mod:`repro.exec.lowering`); all other
    filters fall back to their interpreter closure, per filter.
``vectorized``
    Everything ``compiled`` does, plus batch kernels that execute all
    data-parallel firings of a filter in one NumPy pass — either the
    AST-derived vector kernel (:mod:`repro.exec.vectorize`) or a
    hand-written ``batch_work`` attached to the node.

Compiled kernels are cached in :mod:`repro.cache` under the ``kernel``
stage, keyed by the existing work-function fingerprint, so a warm
cache skips the lowering pass entirely (negative results — bodies that
do not lower — are cached too).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from .. import obs
from ..cache import (
    CACHE_FORMAT_VERSION,
    CompileCache,
    stable_hash,
    work_fingerprint,
)
from ..degrade import DegradationReport
from ..errors import ExecBackendError, GraphError, SemanticError
from ..graph.nodes import Filter, Node
from .lowering import compile_kernel_source, lower_work_source
from .vectorize import HAS_NUMPY, VectorFallback, build_batch_kernel

#: The selectable execution backends, reference semantics first.
BACKENDS = ("interp", "compiled", "vectorized")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"


def resolve_backend(value: Optional[str] = None) -> str:
    """Normalize and validate a backend choice.

    Explicit ``value`` wins; otherwise ``$REPRO_EXEC_BACKEND``;
    otherwise ``interp``.  Unknown names raise
    :class:`~repro.errors.ExecBackendError`.
    """
    if value is None:
        value = os.environ.get(BACKEND_ENV_VAR, "").strip() or "interp"
    name = str(value).strip().lower()
    if name not in BACKENDS:
        raise ExecBackendError(
            f"unknown execution backend {value!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    return name


def kernel_stage_key(node: Filter) -> str:
    """Cache key of a filter's compiled kernel, fingerprint-based."""
    return stable_hash(["kernel", CACHE_FORMAT_VERSION,
                        work_fingerprint(node.work),
                        node.pop, node.push, node.peek])


class ExecPlan:
    """Per-graph kernel table plus firing counters for one executor."""

    def __init__(self, nodes: Iterable[Node], backend: str, *,
                 cache: Optional[CompileCache] = None) -> None:
        self.backend = resolve_backend(backend)
        if self.backend == "interp":
            raise ExecBackendError(
                "the interp backend needs no plan; callers must pass "
                "plan=None")
        # uid -> (kernel, peek, has_input, has_output, name)
        self._kernels: dict[int, tuple] = {}
        # uid -> (batch_kernel, indexed, push)
        self._batch: dict[int, tuple] = {}
        self.compiled_firings = 0
        self.fallback_firings = 0
        self.vectorized_firings = 0
        self.batches = 0
        self.batch_fallbacks = 0
        #: Sticky vectorized -> scalar fallbacks, one event per filter,
        #: on the same ladder/reporting machinery as the compiler's
        #: schedule fallbacks (mirrored to ``degradation.steps``).
        self.degradation = DegradationReport()
        with obs.span("exec.kernel_compile", backend=self.backend):
            for node in nodes:
                if isinstance(node, Filter):
                    self._prepare(node, cache)

    # -- plan construction ---------------------------------------------
    def _prepare(self, node: Filter,
                 cache: Optional[CompileCache]) -> None:
        spec = getattr(node, "work_ast", None)
        if spec is not None and not node.stateful and not node.indexed:
            kernel = self._compiled_kernel(node, spec, cache)
            if kernel is not None:
                self._kernels[node.uid] = (
                    kernel, node.peek, node.num_inputs > 0,
                    node.num_outputs > 0, node.name)
        if self.backend != "vectorized" or node.stateful:
            return
        if node.batch_work is not None:
            self._batch[node.uid] = (node.batch_work, node.indexed,
                                     node.push)
        elif spec is not None and not node.indexed and HAS_NUMPY:
            batch = build_batch_kernel(spec)
            if batch is not None:
                self._batch[node.uid] = (batch, False, node.push)

    def _compiled_kernel(self, node: Filter, spec, cache):
        source = None
        key = None
        if cache is not None:
            key = kernel_stage_key(node)
            payload = cache.get("kernel", key)
            if payload is not None:
                if not payload.get("lowerable", False):
                    return None
                source = payload.get("source")
        if source is None:
            source = lower_work_source(spec, node.name)
            if cache is not None and key is not None:
                cache.put("kernel", key,
                          {"lowerable": source is not None,
                           "source": source})
            if source is None:
                return None
        try:
            return compile_kernel_source(source, spec)
        except SyntaxError:
            # A corrupted cached source must never break execution.
            if cache is not None and key is not None:
                cache.drop("kernel", key)
            fresh = lower_work_source(spec, node.name)
            if fresh is None:
                return None
            return compile_kernel_source(fresh, spec)

    # -- scalar dispatch ------------------------------------------------
    def has_kernel(self, node: Node) -> bool:
        return node.uid in self._kernels

    def fire(self, node: Node, windows, index=None) -> list[list]:
        """One firing: compiled kernel when available, else the node's
        own work function (counted as a fallback for filters)."""
        entry = self._kernels.get(node.uid)
        if entry is None:
            if isinstance(node, Filter):
                self.fallback_firings += 1
            return node.fire(windows, index=index)
        kernel, peek, has_input, has_output, name = entry
        window = windows[0] if has_input else ()
        if len(window) < peek:
            raise GraphError(
                f"filter {name}: window of {len(window)} tokens is "
                f"smaller than peek depth {peek}")
        self.compiled_firings += 1
        out = kernel(window)
        return [out] if has_output else []

    # -- batched dispatch -----------------------------------------------
    def wants_batch(self, node: Node) -> bool:
        return node.uid in self._batch

    def batch_fire(self, node: Node, window_matrix,
                   first_index: int = 0):
        """Execute all firings in ``window_matrix`` in one pass.

        Returns the per-push-slot columns, or None when the batch must
        be replayed through the scalar path (non-widenable construct —
        sticky per filter — or a semantic error that scalar replay will
        re-raise with per-firing attribution).
        """
        entry = self._batch.get(node.uid)
        if entry is None:
            return None
        batch, indexed, push = entry
        try:
            if indexed:
                columns = batch(window_matrix, first_index)
            else:
                columns = batch(window_matrix)
        except VectorFallback as exc:
            self._demote(node, "vector_fallback", str(exc))
            return None
        except SemanticError:
            return None
        if len(columns) != push:
            self._demote(node, "arity_mismatch",
                         f"batch kernel produced {len(columns)} columns, "
                         f"filter pushes {push}")
            return None
        self.vectorized_firings += window_matrix.shape[0]
        self.batches += 1
        return columns

    def _demote(self, node: Node, reason: str, detail: str) -> None:
        """Stickily drop ``node``'s batch kernel and report the step."""
        del self._batch[node.uid]
        self.batch_fallbacks += 1
        if obs.is_enabled():
            # Per-filter, per-reason fallback attribution (the flat
            # batch_fallbacks total can't tell a dtype overflow on one
            # filter from an arity bug on another).  The degradation
            # report below additionally emits the lifecycle event,
            # trace-linked when a serve batch is executing.
            obs.counter("exec.vector_fallbacks", filter=node.name,
                        reason=reason).add(1)
        self.degradation.add("exec", f"vectorized:{node.name}", "scalar",
                             reason, detail)

    # -- telemetry -------------------------------------------------------
    def flush_counters(self) -> None:
        """Publish accumulated firing counts to the obs registry.

        Executors keep plain-int counters on the hot path and flush
        once per run, so telemetry costs nothing per firing.
        """
        if not obs.is_enabled():
            return
        if self.compiled_firings:
            obs.counter("exec.compiled_firings",
                        backend=self.backend).add(self.compiled_firings)
        if self.fallback_firings:
            obs.counter("exec.fallback_firings",
                        backend=self.backend).add(self.fallback_firings)
        if self.vectorized_firings:
            obs.counter("exec.vectorized_firings",
                        backend=self.backend).add(self.vectorized_firings)
        if self.batches:
            obs.counter("exec.batches",
                        backend=self.backend).add(self.batches)
        if self.batch_fallbacks:
            obs.counter("exec.batch_fallbacks",
                        backend=self.backend).add(self.batch_fallbacks)
        self.compiled_firings = 0
        self.fallback_firings = 0
        self.vectorized_firings = 0
        self.batches = 0
        self.batch_fallbacks = 0


def make_plan(nodes: Iterable[Node], backend: Optional[str] = None, *,
              cache: Optional[CompileCache] = None
              ) -> Optional[ExecPlan]:
    """Resolve ``backend`` and build a plan; None for ``interp``."""
    name = resolve_backend(backend)
    if name == "interp":
        return None
    return ExecPlan(nodes, name, cache=cache)
