"""Lower checked work-function ASTs to specialized Python closures.

The tree-walking interpreter in :mod:`repro.lang.interp` evaluates one
AST node per token operation; for steady-state execution that dispatch
overhead dominates.  This module instead *generates Python source* for
each stateless work body — constants folded, ``peek``/``pop`` turned
into direct window indexing, ``push`` into a bound ``list.append`` —
and compiles it once with :func:`compile`/``exec``.

The contract is strict: on every input, the compiled kernel must
behave **byte-identically** to the closure built by
:func:`repro.lang.interp.compile_work_function`, including the exact
:class:`~repro.errors.SemanticError` messages for out-of-window
accesses, division by zero, rate violations and runaway loops.  Any
construct whose exact semantics cannot be reproduced raises
:class:`LoweringError` at lowering time, and the caller falls back to
the interpreter closure for that filter (never a silent behavior
change).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import SemanticError
from ..lang import ast
from ..lang.interp import INTRINSICS, _MAX_LOOP_STEPS, WorkAstSpec
from ..lang.interp import _apply_binop as _interp_binop


class LoweringError(Exception):
    """The body uses a construct the lowering does not cover; the
    caller must fall back to the interpreter closure."""


# ---------------------------------------------------------------------------
# runtime helpers shared by every generated kernel
# ---------------------------------------------------------------------------
def _rt_div(left, right):
    """C-style division, replicating ``interp._apply_binop('/')``."""
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise SemanticError("integer division by zero")
        return left // right if (left >= 0) == (right >= 0) \
            else -((-left) // right) if left < 0 else -(left // (-right))
    if right == 0:
        raise SemanticError("division by zero")
    return left / right


def _rt_mod(left, right):
    """fmod-style modulo, replicating ``interp._apply_binop('%')``."""
    import math
    if right == 0:
        raise SemanticError("modulo by zero")
    return math.fmod(left, right) if isinstance(left, float) \
        or isinstance(right, float) else int(math.fmod(left, right))


def _rt_pop_fail():
    raise SemanticError("pop() past the declared peek window")


def _rt_peek_fail(depth):
    raise SemanticError(f"peek({depth}) outside the declared peek window")


def _rt_index_fail(index, length):
    raise SemanticError(
        f"array index {index} out of bounds [0, {length})")


def _rt_runaway(kind):
    raise SemanticError(f"runaway {kind} loop in work body")


def _rt_undefined(exc):
    """Convert a NameError from the kernel into the interpreter's
    'undefined variable' SemanticError (demangling the ``v_`` prefix)."""
    name = getattr(exc, "name", None) or ""
    if name.startswith("v_"):
        name = name[2:]
    raise SemanticError(f"undefined variable {name!r}") from None


#: Names injected into every kernel's global namespace.
_KERNEL_GLOBALS = {
    "__r_div": _rt_div,
    "__r_mod": _rt_mod,
    "__r_popfail": _rt_pop_fail,
    "__r_peekfail": _rt_peek_fail,
    "__r_idxfail": _rt_index_fail,
    "__r_runaway": _rt_runaway,
    "__r_undef": _rt_undefined,
    "__r_SemanticError": SemanticError,
}
_KERNEL_GLOBALS.update(
    {f"__r_{name}": fn for name, fn in INTRINSICS.items()})


# ---------------------------------------------------------------------------
# static int-type inference (lets the lowering skip int() coercions)
# ---------------------------------------------------------------------------
def _collect_decls(stmts, scalars, arrays, assigns):
    """Walk every statement collecting declarations and scalar assigns."""
    for stmt in stmts:
        if isinstance(stmt, ast.VarDecl):
            if stmt.array_size is not None:
                arrays.add(stmt.name)
                scalars.pop(stmt.name, None)
            else:
                # A redeclaration overwrites; track the *set* of types
                # a name is declared with.
                scalars.setdefault(stmt.name, set()).add(stmt.type_name)
                arrays.discard(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Name):
                assigns.append((stmt.target.ident, stmt.op, stmt.value))
        elif isinstance(stmt, ast.IfStmt):
            _collect_decls(stmt.then_body, scalars, arrays, assigns)
            _collect_decls(stmt.else_body, scalars, arrays, assigns)
        elif isinstance(stmt, ast.ForStmt):
            inner = [s for s in (stmt.init, stmt.update) if s is not None]
            _collect_decls(inner, scalars, arrays, assigns)
            _collect_decls(stmt.body, scalars, arrays, assigns)
        elif isinstance(stmt, ast.WhileStmt):
            _collect_decls(stmt.body, scalars, arrays, assigns)


def _static_int(expr, int_vars) -> bool:
    """True when ``expr`` provably evaluates to a Python int."""
    if isinstance(expr, ast.IntLit):
        return True
    if isinstance(expr, ast.Name):
        return expr.ident in int_vars
    if isinstance(expr, ast.Unary):
        return expr.op == "-" and _static_int(expr.operand, int_vars)
    if isinstance(expr, ast.Binary):
        if expr.op in ("+", "-", "*", "/", "%"):
            return (_static_int(expr.left, int_vars)
                    and _static_int(expr.right, int_vars))
        return False
    if isinstance(expr, ast.Call):
        if expr.func in ("floor", "ceil"):
            return True
        if expr.func == "round" and len(expr.args) == 1:
            return True
        if expr.func in ("abs", "min", "max"):
            return all(_static_int(a, int_vars) for a in expr.args)
        return False
    return False


def _infer_int_vars(body, params) -> set:
    """Fixpoint set of scalar variables that always hold Python ints.

    A scalar is int when it is only ever declared ``int`` (``VarDecl``
    coerces with ``int()``) and every assignment to it stores a
    provably-int value.  Conservative by construction: anything
    uncertain drops out, which only disables an optimization.
    """
    scalars: dict[str, set] = {}
    arrays: set = set()
    assigns: list = []
    _collect_decls(body, scalars, arrays, assigns)
    int_vars = {name for name, types in scalars.items()
                if types == {"int"}}
    int_vars |= {name for name, value in params.items()
                 if isinstance(value, int) and not isinstance(value, bool)
                 and name not in scalars and name not in arrays}
    changed = True
    while changed:
        changed = False
        for name, op, value in assigns:
            if name in int_vars and not _static_int(value, int_vars):
                # Compound int-op-int stays int, so only a non-int
                # right-hand side demotes.
                int_vars.discard(name)
                changed = True
    return int_vars


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------
def _fold(expr, params):
    """Fold parameter references and constant subtrees to literals.

    Returns either an AST node or a Python constant (int/float/bool).
    Folding never raises: a subtree whose evaluation would error is
    left unfolded so the error still surfaces at run time, exactly
    where the interpreter would raise it.
    """
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
        return expr.value
    if isinstance(expr, ast.Name):
        value = params.get(expr.ident, _MISSING)
        if value is not _MISSING and isinstance(value, (int, float, bool)) \
                and _finite(value):
            return value
        return expr
    if isinstance(expr, ast.Unary):
        operand = _fold(expr.operand, params)
        if _is_const(operand):
            value = -operand if expr.op == "-" else (not operand)
            if _finite(value):
                return value
            operand = _unfold(operand)
        return ast.Unary(expr.op, _unfold(operand))
    if isinstance(expr, ast.Binary):
        left = _fold(expr.left, params)
        right = _fold(expr.right, params)
        if _is_const(left) and _is_const(right) \
                and expr.op not in ("&&", "||"):
            try:
                value = _interp_binop(expr.op, left, right)
            except SemanticError:
                value = _MISSING
            if value is not _MISSING and _finite(value):
                return value
        return ast.Binary(expr.op, _unfold(left), _unfold(right))
    if isinstance(expr, ast.Call):
        args = [_fold(a, params) for a in expr.args]
        fn = INTRINSICS.get(expr.func)
        if fn is not None and all(_is_const(a) for a in args):
            try:
                value = fn(*args)
            except (ValueError, OverflowError, ZeroDivisionError,
                    TypeError):
                value = _MISSING
            if value is not _MISSING \
                    and isinstance(value, (int, float, bool)) \
                    and _finite(value):
                return value
        return ast.Call(expr.func, tuple(_unfold(a) for a in args))
    if isinstance(expr, ast.Index):
        return ast.Index(_unfold(_fold(expr.base, params)),
                         _unfold(_fold(expr.index, params)))
    if isinstance(expr, ast.PeekExpr):
        return ast.PeekExpr(_unfold(_fold(expr.depth, params)))
    return expr


_MISSING = object()


def _is_const(value) -> bool:
    return isinstance(value, (int, float, bool))


def _finite(value) -> bool:
    if isinstance(value, float):
        return value == value and value not in (float("inf"),
                                                float("-inf"))
    return True


def _unfold(value):
    """Wrap a folded Python constant back into a literal AST node."""
    if isinstance(value, bool):
        return ast.BoolLit(value)
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, float):
        return ast.FloatLit(value)
    return value


# ---------------------------------------------------------------------------
# the lowering pass
# ---------------------------------------------------------------------------
class _Lowerer:
    """One lowering pass over a work body; emits Python source lines."""

    def __init__(self, spec: WorkAstSpec) -> None:
        self.spec = spec
        self.params = dict(spec.params)
        self.lines: list[str] = []
        self.temp = 0
        self.int_vars = _infer_int_vars(spec.work.body, self.params)
        # Names declared so far, in lowering order.  A reference to a
        # name outside this set may be a dynamically-undefined variable
        # (the interpreter raises at run time); UnboundLocalError in
        # the kernel reproduces that, see the generated except clause.
        self.arrays: set = {name for name, value in self.params.items()
                            if isinstance(value, list)}

    # -- emission helpers ----------------------------------------------
    def fresh(self) -> str:
        self.temp += 1
        return f"__r_t{self.temp}"

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- expressions ----------------------------------------------------
    def expr(self, node) -> str:
        node = _fold(node, self.params)
        if _is_const(node):
            return repr(node)
        if isinstance(node, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return repr(node.value)
        if isinstance(node, ast.Name):
            if node.ident in self.params:
                # Non-literal parameter (e.g. a list): bind through the
                # kernel globals under its mangled name.
                return f"v_{node.ident}"
            return f"v_{node.ident}"
        if isinstance(node, ast.Index):
            return self.index_read(node)
        if isinstance(node, ast.Unary):
            op = "-" if node.op == "-" else "not "
            return f"({op}{self.expr(node.operand)})"
        if isinstance(node, ast.Binary):
            return self.binary(node)
        if isinstance(node, ast.Call):
            if node.func not in INTRINSICS:
                raise LoweringError(f"unknown function {node.func!r}")
            args = ", ".join(self.expr(a) for a in node.args)
            return f"__r_{node.func}({args})"
        if isinstance(node, ast.PeekExpr):
            return self.peek(node)
        if isinstance(node, ast.PopExpr):
            return self.pop_expr()
        raise LoweringError(
            f"cannot lower expression {type(node).__name__}")

    def binary(self, node: ast.Binary) -> str:
        if node.op == "&&":
            return (f"(bool({self.expr(node.left)}) and "
                    f"bool({self.expr(node.right)}))")
        if node.op == "||":
            return (f"(bool({self.expr(node.left)}) or "
                    f"bool({self.expr(node.right)}))")
        left = self.expr(node.left)
        right = self.expr(node.right)
        if node.op == "/":
            return f"__r_div({left}, {right})"
        if node.op == "%":
            return f"__r_mod({left}, {right})"
        if node.op in ("+", "-", "*", "<", "<=", ">", ">=", "==", "!="):
            return f"({left} {node.op} {right})"
        raise LoweringError(f"unknown operator {node.op!r}")

    def pop_expr(self) -> str:
        return ("(__r_w[(__r_c := __r_c + 1) - 1] "
                "if __r_c < __r_n else __r_popfail())")

    def peek(self, node: ast.PeekExpr) -> str:
        depth = _fold(node.depth, self.params)
        if _is_const(depth) and not isinstance(depth, bool):
            d = int(depth)
            t = self.fresh()
            if d >= 0:
                return (f"(__r_w[{t}] if ({t} := __r_c + {d}) < __r_n "
                        f"else __r_peekfail({d}))")
            return (f"(__r_w[{t}] if 0 <= ({t} := __r_c + ({d})) "
                    f"< __r_n else __r_peekfail({d}))")
        depth = _unfold(depth)
        t = self.fresh()
        if _static_int(depth, self.int_vars):
            src = self.expr(depth)
            return (f"(__r_w[{t}] if 0 <= ({t} := __r_c + ({src})) "
                    f"< __r_n else __r_peekfail({t} - __r_c))")
        d = self.fresh()
        src = self.expr(depth)
        return (f"(__r_w[{t}] if 0 <= ({t} := __r_c + "
                f"({d} := int({src}))) < __r_n "
                f"else __r_peekfail({d}))")

    def index_parts(self, node: ast.Index) -> tuple[str, str, str]:
        """Lower an array subscript: (base, guarded index, temp)."""
        if not isinstance(node.base, ast.Name):
            raise LoweringError("indexing a non-name base")
        name = node.base.ident
        if name not in self.arrays:
            # Either a non-array variable or a dynamically-undefined
            # name; the interpreter raises at run time, so fall back.
            raise LoweringError(f"indexing non-array {name!r}")
        base = f"v_{name}"
        idx = _fold(node.index, self.params)
        idx = _unfold(idx)
        src = self.expr(idx)
        if not _static_int(idx, self.int_vars):
            src = f"int({src})"
        t = self.fresh()
        return base, src, t

    def index_read(self, node: ast.Index) -> str:
        base, src, t = self.index_parts(node)
        return (f"({base}[{t}] if 0 <= ({t} := {src}) < len({base}) "
                f"else __r_idxfail({t}, len({base})))")

    # -- statements -----------------------------------------------------
    def block(self, stmts, indent: int) -> None:
        for stmt in stmts:
            self.stmt(stmt, indent)

    def stmt(self, node, indent: int) -> None:
        if isinstance(node, ast.VarDecl):
            self.var_decl(node, indent)
        elif isinstance(node, ast.Assign):
            self.assign(node, indent)
        elif isinstance(node, ast.PushStmt):
            self.emit(indent, f"__r_push({self.expr(node.value)})")
        elif isinstance(node, ast.PopStmt):
            self.emit(indent, "if __r_c >= __r_n: __r_popfail()")
            self.emit(indent, "__r_c += 1")
        elif isinstance(node, ast.ExprStmt):
            self.emit(indent, f"__r_e = {self.expr(node.expr)}")
        elif isinstance(node, ast.IfStmt):
            self.emit(indent, f"if {self.expr(node.condition)}:")
            self.block(node.then_body, indent + 1)
            if not node.then_body:
                self.emit(indent + 1, "pass")
            if node.else_body:
                self.emit(indent, "else:")
                self.block(node.else_body, indent + 1)
        elif isinstance(node, ast.ForStmt):
            self.loop(node, indent, kind="for")
        elif isinstance(node, ast.WhileStmt):
            self.loop(node, indent, kind="while")
        else:
            raise LoweringError(
                f"cannot lower statement {type(node).__name__}")

    def var_decl(self, node: ast.VarDecl, indent: int) -> None:
        name = f"v_{node.name}"
        if node.array_size is not None:
            size = _fold(node.array_size, self.params)
            fill = "0" if node.type_name == "int" else "0.0"
            if _is_const(size) and not isinstance(size, bool):
                self.emit(indent, f"{name} = [{fill}] * {int(size)}")
            else:
                src = self.expr(_unfold(size))
                self.emit(indent, f"{name} = [{fill}] * int({src})")
            self.arrays.add(node.name)
            return
        self.arrays.discard(node.name)
        if node.init is None:
            default = "0" if node.type_name == "int" else "0.0"
            self.emit(indent, f"{name} = {default}")
            return
        init = _fold(node.init, self.params)
        if node.type_name == "int":
            if _is_const(init) and not isinstance(init, bool):
                self.emit(indent, f"{name} = {int(init)}")
            else:
                init = _unfold(init)
                src = self.expr(init)
                if _static_int(init, self.int_vars):
                    self.emit(indent, f"{name} = {src}")
                else:
                    self.emit(indent, f"{name} = int({src})")
        else:
            self.emit(indent, f"{name} = {self.expr(_unfold(init))}")

    def assign(self, node: ast.Assign, indent: int) -> None:
        if isinstance(node.target, ast.Name):
            name = f"v_{node.target.ident}"
            if node.op == "=":
                self.emit(indent, f"{name} = {self.expr(node.value)}")
                return
            # Compound: the interpreter evaluates the value first, then
            # the current target; reading a plain name is side-effect
            # free, so left-to-right application is equivalent.
            op = node.op[0]
            value = self.expr(node.value)
            if op == "/":
                self.emit(indent, f"{name} = __r_div({name}, {value})")
            elif op == "%":
                self.emit(indent, f"{name} = __r_mod({name}, {value})")
            elif op in ("+", "-", "*"):
                self.emit(indent, f"{name} {op}= {value}")
            else:
                raise LoweringError(f"unknown compound op {node.op!r}")
            return
        if not isinstance(node.target, ast.Index):
            raise LoweringError("invalid assignment target")
        # Indexed target: replicate the interpreter's exact order —
        # value first, then (for compound ops) a bounds-checked read of
        # the target, then a second index evaluation for the store.
        v = self.fresh()
        self.emit(indent, f"{v} = {self.expr(node.value)}")
        if node.op != "=":
            op = node.op[0]
            current = self.index_read(node.target)
            if op == "/":
                self.emit(indent, f"{v} = __r_div({current}, {v})")
            elif op == "%":
                self.emit(indent, f"{v} = __r_mod({current}, {v})")
            elif op in ("+", "-", "*"):
                self.emit(indent, f"{v} = {current} {op} {v}")
            else:
                raise LoweringError(f"unknown compound op {node.op!r}")
        base, src, t = self.index_parts(node.target)
        self.emit(indent, f"if not 0 <= ({t} := {src}) < len({base}): "
                          f"__r_idxfail({t}, len({base}))")
        self.emit(indent, f"{base}[{t}] = {v}")

    def loop(self, node, indent: int, *, kind: str) -> None:
        if kind == "for" and node.init is not None:
            self.stmt(node.init, indent)
        steps = self.fresh()
        self.emit(indent, f"{steps} = 0")
        condition = "True"
        if getattr(node, "condition", None) is not None:
            condition = self.expr(node.condition)
        self.emit(indent, f"while {condition}:")
        self.block(node.body, indent + 1)
        if kind == "for" and node.update is not None:
            self.stmt(node.update, indent + 1)
        self.emit(indent + 1, f"{steps} += 1")
        self.emit(indent + 1,
                  f"if {steps} > {_MAX_LOOP_STEPS}: "
                  f"__r_runaway({kind!r})")


def lower_work_source(spec: WorkAstSpec,
                      name: str = "kernel") -> Optional[str]:
    """Generate kernel source for ``spec``, or None when not lowerable.

    The generated module defines one function ``__r_kernel(window)``
    with the same contract as the interpreter closure: truncate the
    window to the peek depth, run the body, enforce the declared
    push/pop rates, return the pushed tokens.
    """
    low = _Lowerer(spec)
    try:
        low.block(spec.work.body, indent=2)
    except LoweringError:
        return None
    body = low.lines or ["        pass"]
    header = [
        f"def __r_kernel(window):  # {name}",
        f"    __r_w = list(window[:{spec.peek}])",
        "    __r_n = len(__r_w)",
        "    __r_c = 0",
        "    __r_out = []",
        "    __r_push = __r_out.append",
        "    try:",
    ]
    footer = [
        "    except NameError as __r_x:",
        "        __r_undef(__r_x)",
        f"    if len(__r_out) != {spec.push}:",
        "        raise __r_SemanticError("
        "f'work body pushed {len(__r_out)} tokens, "
        f"declared push {spec.push}')",
        f"    if __r_c > {spec.pop}:",
        "        raise __r_SemanticError("
        "f'work body popped {__r_c} tokens, "
        f"declared pop {spec.pop}')",
        "    return __r_out",
    ]
    return "\n".join(header + body + footer) + "\n"


def compile_kernel_source(source: str,
                          spec: Optional[WorkAstSpec] = None):
    """Compile generated kernel source into a callable.

    Non-literal parameters (array constants) are bound into the module
    namespace under their mangled ``v_`` names.
    """
    namespace = dict(_KERNEL_GLOBALS)
    if spec is not None:
        for pname, value in spec.params.items():
            if isinstance(value, list):
                namespace[f"v_{pname}"] = value
            elif not (isinstance(value, (int, float, bool))
                      and _finite(value)):
                namespace[f"v_{pname}"] = value
    code = compile(source, "<repro.exec kernel>", "exec")
    exec(code, namespace)
    return namespace["__r_kernel"]


def lower_work_function(spec: WorkAstSpec, name: str = "kernel"):
    """Lower and compile in one step; None when not lowerable."""
    source = lower_work_source(spec, name)
    if source is None:
        return None
    return compile_kernel_source(source, spec)
