"""NumPy-vectorized batch execution of stateless work functions.

All data-parallel firings of a stateless filter see disjoint input
windows and compute independently, so they can execute as *one* pass
over a ``(firings, peek)`` window matrix with every scalar in the work
body widened to a length-``firings`` column (Lin et al.'s
memory-constrained vectorization insight applied at the executor
level).

Byte-identity with the reference interpreter is the hard constraint,
so the vector evaluator is deliberately conservative:

* only operations that are **exact** under IEEE-754 vectorization are
  widened (``+ - * /`` on float64, ``fmod``, comparisons, ``abs``,
  ``min``/``max`` on uniform kinds, ``sqrt``, ``floor``/``ceil``/
  ``round`` with an int cast);
* transcendental intrinsics (``sin``, ``exp``, ...) on columns raise
  :class:`VectorFallback` — NumPy's SIMD paths may differ from libm by
  1 ulp, which would break byte-equality;
* any construct needing a per-firing branch (a column used as an
  ``if``/loop condition or array index, short-circuit ``&&``/``||`` on
  columns, int division/modulo on columns, a zero anywhere in a
  divisor) raises :class:`VectorFallback`.

On fallback the caller replays the batch through the scalar path —
always safe because the evaluator never mutates executor state.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from ..errors import SemanticError
from ..lang import ast
from ..lang.interp import INTRINSICS, _MAX_LOOP_STEPS, WorkAstSpec
from ..lang.interp import _apply_binop as _scalar_binop

HAS_NUMPY = _np is not None


class VectorFallback(Exception):
    """The body needs a per-firing decision the vector path cannot
    make; the caller must replay the batch through the scalar path."""


def token_matrix(tokens, firings: int, pop: int,
                 peek: int) -> Optional["_np.ndarray"]:
    """Build the ``(firings, peek)`` window matrix for a batch.

    ``tokens`` is the flat channel region covering all ``firings``
    windows (length ``peek + (firings - 1) * pop``).  Returns None when
    the tokens are not of one uniform numeric type — mixed or exotic
    token streams must take the scalar path to preserve bytes.
    """
    if _np is None:
        return None
    tokens = list(tokens)
    if peek == 0:
        return _np.empty((firings, 0))
    t0 = type(tokens[0])
    if t0 not in (float, int, bool):
        return None
    for tok in tokens:
        if type(tok) is not t0:
            return None
    dtype = {float: _np.float64, int: _np.int64, bool: _np.bool_}[t0]
    try:
        flat = _np.array(tokens, dtype=dtype)
    except OverflowError:
        return None
    idx = (_np.arange(firings)[:, None] * pop + _np.arange(peek))
    return flat[idx]


def columns_to_rows(columns, firings: int) -> list[list]:
    """Expand per-push-slot columns into per-firing output lists."""
    expanded = []
    for col in columns:
        if _np is not None and isinstance(col, _np.ndarray):
            expanded.append(col.tolist())
        elif _np is not None and isinstance(col, _np.generic):
            expanded.append([col.item()] * firings)
        else:
            expanded.append([col] * firings)
    return [[col[f] for col in expanded] for f in range(firings)]


def flatten_columns(columns, firings: int) -> list:
    """Flatten columns firing-major: firing f's tokens are contiguous."""
    if not columns:
        return []
    cols = []
    for col in columns:
        if _np is not None and isinstance(col, _np.ndarray):
            cols.append(col.tolist())
        elif _np is not None and isinstance(col, _np.generic):
            cols.append([col.item()] * firings)
        else:
            cols.append([col] * firings)
    out = []
    for f in range(firings):
        for col in cols:
            out.append(col[f])
    return out


# ---------------------------------------------------------------------------
# the vector evaluator
# ---------------------------------------------------------------------------
def _is_vec(value) -> bool:
    return isinstance(value, _np.ndarray)


def _as_arith(value):
    """Bool columns behave like Python bools under arithmetic (ints)."""
    if _is_vec(value) and value.dtype == _np.bool_:
        return value.astype(_np.int64)
    return value


def _is_intlike(value) -> bool:
    if _is_vec(value):
        return value.dtype == _np.int64
    return isinstance(value, int) and not isinstance(value, bool)


def _is_floatlike(value) -> bool:
    if _is_vec(value):
        return value.dtype == _np.float64
    return isinstance(value, float)


def _vec_binop(op: str, left, right):
    if not (_is_vec(left) or _is_vec(right)):
        return _scalar_binop(op, left, right)
    if op in ("+", "-", "*"):
        left, right = _as_arith(left), _as_arith(right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        return left * right
    if op == "/":
        left, right = _as_arith(left), _as_arith(right)
        if _is_vec(right):
            if bool((right == 0).any()):
                raise VectorFallback("zero in divisor column")
        elif right == 0:
            raise VectorFallback("division by zero")
        if _is_intlike(left) and _is_intlike(right):
            raise VectorFallback("int division on columns")
        return left / right
    if op == "%":
        left, right = _as_arith(left), _as_arith(right)
        if _is_vec(right):
            if bool((right == 0).any()):
                raise VectorFallback("zero in modulo column")
        elif right == 0:
            raise VectorFallback("modulo by zero")
        # np.fmod is C fmod elementwise, matching math.fmod; int%int
        # stays int64 (trunc remainder) exactly like int(math.fmod).
        return _np.fmod(left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    raise VectorFallback(f"operator {op!r} on columns")


def _vec_call(func: str, args):
    if not any(_is_vec(a) for a in args):
        fn = INTRINSICS.get(func)
        if fn is None:
            raise SemanticError(f"unknown function {func!r}")
        return fn(*args)
    if func == "abs" and len(args) == 1:
        return _np.abs(_as_arith(args[0]))
    if func == "sqrt" and len(args) == 1:
        return _np.sqrt(_as_arith(args[0]))
    if func in ("min", "max") and len(args) >= 1:
        # Python min/max return an *argument* unconverted, so mixing
        # int and float operands could change the winner's type.
        if all(_is_floatlike(a) for a in args) \
                or all(_is_intlike(a) for a in args):
            fn = _np.minimum if func == "min" else _np.maximum
            result = args[0]
            for arg in args[1:]:
                result = fn(result, arg)
            return result
        raise VectorFallback(f"{func} on mixed-kind columns")
    if func in ("floor", "ceil") and len(args) == 1:
        fn = _np.floor if func == "floor" else _np.ceil
        return fn(_as_arith(args[0])).astype(_np.int64)
    if func == "round" and len(args) == 1:
        arg = _as_arith(args[0])
        if _is_intlike(arg):
            return arg
        return _np.round(arg).astype(_np.int64)
    # sin/cos/tan/atan/exp/log/pow: NumPy's vector routines are not
    # guaranteed bit-identical to libm — scalar replay keeps the bytes.
    raise VectorFallback(f"intrinsic {func!r} on columns")


class _VecEnv:
    __slots__ = ("values",)

    def __init__(self, params) -> None:
        self.values = dict(params)

    def get(self, name: str):
        try:
            return self.values[name]
        except KeyError:
            raise SemanticError(f"undefined variable {name!r}") from None

    def set(self, name: str, value) -> None:
        self.values[name] = value


class _VecState:
    """Window matrix cursor + pushed-columns accumulator."""

    __slots__ = ("window", "width", "cursor", "pushed")

    def __init__(self, window) -> None:
        self.window = window            # (firings, peek) matrix
        self.width = window.shape[1]
        self.cursor = 0
        self.pushed: list = []

    def pop(self):
        if self.cursor >= self.width:
            raise SemanticError("pop() past the declared peek window")
        column = self.window[:, self.cursor]
        self.cursor += 1
        return column

    def peek(self, depth: int):
        index = self.cursor + depth
        if not 0 <= index < self.width:
            raise SemanticError(
                f"peek({depth}) outside the declared peek window")
        return self.window[:, index]


def _vec_eval(expr, env: _VecEnv, state: _VecState):
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
        return expr.value
    if isinstance(expr, ast.Name):
        return env.get(expr.ident)
    if isinstance(expr, ast.Index):
        base = _vec_eval(expr.base, env, state)
        index = _vec_eval(expr.index, env, state)
        if _is_vec(index):
            raise VectorFallback("column-valued array index")
        index = int(index)
        if not isinstance(base, list):
            raise SemanticError("indexing a non-array value")
        if not 0 <= index < len(base):
            raise SemanticError(
                f"array index {index} out of bounds [0, {len(base)})")
        return base[index]
    if isinstance(expr, ast.Unary):
        value = _vec_eval(expr.operand, env, state)
        if expr.op == "-":
            return -_as_arith(value) if _is_vec(value) else -value
        if _is_vec(value):
            return _np.logical_not(value)
        return not value
    if isinstance(expr, ast.Binary):
        if expr.op in ("&&", "||"):
            left = _vec_eval(expr.left, env, state)
            if _is_vec(left):
                raise VectorFallback("short-circuit on a column")
            if expr.op == "&&":
                if not left:
                    return False
            elif left:
                return True
            right = _vec_eval(expr.right, env, state)
            if _is_vec(right):
                raise VectorFallback("short-circuit on a column")
            return bool(right)
        left = _vec_eval(expr.left, env, state)
        right = _vec_eval(expr.right, env, state)
        return _vec_binop(expr.op, left, right)
    if isinstance(expr, ast.Call):
        args = [_vec_eval(a, env, state) for a in expr.args]
        return _vec_call(expr.func, args)
    if isinstance(expr, ast.PeekExpr):
        depth = _vec_eval(expr.depth, env, state)
        if _is_vec(depth):
            raise VectorFallback("column-valued peek depth")
        return state.peek(int(depth))
    if isinstance(expr, ast.PopExpr):
        return state.pop()
    raise SemanticError(f"unknown expression {type(expr).__name__}")


def _vec_store(target, value, env: _VecEnv, state: _VecState) -> None:
    if isinstance(target, ast.Name):
        env.set(target.ident, value)
        return
    if isinstance(target, ast.Index):
        base = _vec_eval(target.base, env, state)
        index = _vec_eval(target.index, env, state)
        if _is_vec(index):
            raise VectorFallback("column-valued array index")
        index = int(index)
        if not isinstance(base, list):
            raise SemanticError("indexed assignment into a non-array")
        if not 0 <= index < len(base):
            raise SemanticError(
                f"array index {index} out of bounds [0, {len(base)})")
        base[index] = value
        return
    raise SemanticError("invalid assignment target")


def _vec_exec(stmt, env: _VecEnv, state: _VecState) -> None:
    if isinstance(stmt, ast.VarDecl):
        if stmt.array_size is not None:
            size = _vec_eval(stmt.array_size, env, state)
            if _is_vec(size):
                raise VectorFallback("column-valued array size")
            fill = 0 if stmt.type_name == "int" else 0.0
            env.set(stmt.name, [fill] * int(size))
        else:
            value = _vec_eval(stmt.init, env, state) \
                if stmt.init is not None \
                else (0 if stmt.type_name == "int" else 0.0)
            if stmt.type_name == "int":
                if _is_vec(value):
                    if value.dtype != _np.int64:
                        raise VectorFallback("int() cast of a column")
                else:
                    value = int(value)
            env.set(stmt.name, value)
    elif isinstance(stmt, ast.Assign):
        value = _vec_eval(stmt.value, env, state)
        if stmt.op != "=":
            current = _vec_eval(stmt.target, env, state)
            value = _vec_binop(stmt.op[0], current, value)
        _vec_store(stmt.target, value, env, state)
    elif isinstance(stmt, ast.PushStmt):
        state.pushed.append(_vec_eval(stmt.value, env, state))
    elif isinstance(stmt, ast.PopStmt):
        state.pop()
    elif isinstance(stmt, ast.ExprStmt):
        _vec_eval(stmt.expr, env, state)
    elif isinstance(stmt, ast.IfStmt):
        condition = _vec_eval(stmt.condition, env, state)
        if _is_vec(condition):
            raise VectorFallback("column-valued if condition")
        if condition:
            for inner in stmt.then_body:
                _vec_exec(inner, env, state)
        else:
            for inner in stmt.else_body:
                _vec_exec(inner, env, state)
    elif isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            _vec_exec(stmt.init, env, state)
        steps = 0
        while True:
            if stmt.condition is not None:
                condition = _vec_eval(stmt.condition, env, state)
                if _is_vec(condition):
                    raise VectorFallback("column-valued loop condition")
                if not condition:
                    break
            for inner in stmt.body:
                _vec_exec(inner, env, state)
            if stmt.update is not None:
                _vec_exec(stmt.update, env, state)
            steps += 1
            if steps > _MAX_LOOP_STEPS:
                raise SemanticError("runaway for loop in work body")
    elif isinstance(stmt, ast.WhileStmt):
        steps = 0
        while True:
            condition = _vec_eval(stmt.condition, env, state)
            if _is_vec(condition):
                raise VectorFallback("column-valued loop condition")
            if not condition:
                break
            for inner in stmt.body:
                _vec_exec(inner, env, state)
            steps += 1
            if steps > _MAX_LOOP_STEPS:
                raise SemanticError("runaway while loop in work body")
    else:
        raise SemanticError(f"unknown statement {type(stmt).__name__}")


def build_batch_kernel(spec: WorkAstSpec):
    """A batch kernel evaluating the work AST over a window matrix.

    The kernel takes the ``(firings, peek)`` matrix and returns the
    pushed columns (length ``push``); it raises :class:`VectorFallback`
    when the body cannot be widened and :class:`SemanticError` exactly
    where the interpreter would (the caller replays the batch through
    the scalar path in both cases, so errors keep their per-firing
    attribution).  Returns None when NumPy is unavailable.
    """
    if _np is None:
        return None
    params = dict(spec.params)
    body = spec.work.body
    push, pop = spec.push, spec.pop

    def batch(window_matrix):
        state = _VecState(window_matrix)
        env = _VecEnv(params)
        for stmt in body:
            _vec_exec(stmt, env, state)
        if len(state.pushed) != push:
            raise SemanticError(
                f"work body pushed {len(state.pushed)} tokens, declared "
                f"push {push}")
        if state.cursor > pop:
            raise SemanticError(
                f"work body popped {state.cursor} tokens, declared pop "
                f"{pop}")
        return state.pushed

    return batch
