"""Compiled + vectorized filter-kernel execution backends.

Steady-state firing throughput in the interpreter, the SWP executor
and the serving runtime is bounded by AST tree-walking.  This package
removes that bound two ways, selected with
``--exec-backend {interp,compiled,vectorized}`` (env
``REPRO_EXEC_BACKEND``):

* :mod:`repro.exec.lowering` — per-filter specialization: the checked
  work AST is lowered to Python source (constants folded, peek/pop/
  push turned into direct window indexing) and compiled once;
* :mod:`repro.exec.vectorize` — batch firing: all data-parallel
  firings of a stateless filter run as one NumPy pass over a
  ``(firings, peek)`` window matrix;
* :mod:`repro.exec.plan` — backend resolution, per-graph kernel
  tables, the per-filter interpreter fallback, kernel caching and the
  ``exec.*`` telemetry counters.

Every backend is byte-identical to the reference interpreter on valid
programs; constructs outside a lowering's coverage fall back per
filter, never silently change behavior.
"""

from .lowering import (
    LoweringError,
    compile_kernel_source,
    lower_work_function,
    lower_work_source,
)
from .plan import (
    BACKEND_ENV_VAR,
    BACKENDS,
    ExecPlan,
    kernel_stage_key,
    make_plan,
    resolve_backend,
)
from .vectorize import (
    HAS_NUMPY,
    VectorFallback,
    build_batch_kernel,
    columns_to_rows,
    flatten_columns,
    token_matrix,
)

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "ExecPlan",
    "HAS_NUMPY",
    "LoweringError",
    "VectorFallback",
    "build_batch_kernel",
    "columns_to_rows",
    "compile_kernel_source",
    "flatten_columns",
    "kernel_stage_key",
    "lower_work_function",
    "lower_work_source",
    "make_plan",
    "resolve_backend",
    "token_matrix",
]
