"""Request-lifecycle event log with causal trace propagation.

Compile-phase spans (:mod:`repro.obs.tracer`) answer "where did the
wall time go"; a serving runtime also needs *causality*: which
admission decision, batch, breaker trip and degradation step belong to
which request.  This module records that as a flat, append-only log of
typed :class:`LifecycleEvent`\\ s, each stamped with

* a **trace id** — assigned per :class:`~repro.serve.request
  .ServeRequest` by the server and propagated implicitly through a
  :mod:`contextvars` context (so events emitted deep inside the
  executor, the fault layer, or a worker-pool thread attach to the
  request that caused them without threading ids through every call);
* a **simulated timestamp** (``ts_ms``) where one exists — serving
  events carry the server's deterministic clock; wall-side events
  (fault retries during compile, cache corruption) carry ``None``;
* a **kind** from the typed vocabulary in :data:`EVENT_KINDS` plus
  free-form attributes.

The log is enabled/disabled with the rest of :mod:`repro.obs` and
costs one boolean check per call site while off.  Exporters turn it
into a JSONL event stream and into causally-linked lanes of the
Chrome trace (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ConfigError

#: The typed event vocabulary.  Emitting an unknown kind is a caller
#: bug (caught loudly), so the log stays machine-greppable.
EVENT_KINDS = frozenset({
    "admit",           # request admitted into a session's queue
    "enqueue",         # request stored by the admission queue
    "shed",            # typed rejection (queue_full/quota/deadline/...)
    "dispatch",        # request left the queue into a formed batch
    "batch_form",      # a batch was formed (one per batch)
    "batch_fire",      # a batch executed (one per batch, has duration)
    "respond",         # terminal ok/failed response for a request
    "retry",           # a bounded-retry ladder consumed one retry
    "fault_injected",  # the fault layer injected at a site
    "breaker",         # circuit-breaker state transition
    "degradation",     # a degradation-ladder step (incl. vector fallback)
    "slo_eval",        # one SLO evaluation over a rolling window
    "slo_breach",      # an SLO objective observed out of bounds
    "session_compile", # a serve session finished compiling
    "steal",           # a hot shard donated a pipeline's queued work
    "migrate",         # a pipeline changed home shard (scale/crash)
    "scale",           # a fleet autoscaling decision (up/down/hold)
    "shard_crash",     # an injected shard crash (fault site shard.crash)
    "checkpoint",      # a durable checkpoint was written (or skipped)
    "replay",          # recovery replayed/deduped journal state
})

#: Implicit causal context: the trace id of the request currently
#: being worked on.  ContextVar (not a threading.local) so
#: repro.parallel can snapshot and restore it inside pool workers.
_TRACE: ContextVar[Optional[str]] = ContextVar("repro_trace_id",
                                               default=None)


def current_trace() -> Optional[str]:
    """Trace id of the active request context, if any."""
    return _TRACE.get()


def set_trace(trace_id: Optional[str]):
    """Install ``trace_id`` as the ambient trace; returns a token for
    :func:`reset_trace`."""
    return _TRACE.set(trace_id)


def reset_trace(token) -> None:
    _TRACE.reset(token)


@contextmanager
def trace_context(trace_id: Optional[str]):
    """``with trace_context(tid):`` — scope the ambient trace id."""
    token = _TRACE.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE.reset(token)


@dataclass
class LifecycleEvent:
    """One typed, causally-attributed point on a request's timeline."""

    seq: int                       # global append order
    kind: str                      # member of EVENT_KINDS
    ts_ms: Optional[float]         # simulated clock; None = wall-side
    trace_id: Optional[str]        # owning request, when known
    attrs: dict[str, Any] = field(default_factory=dict)
    thread: str = "MainThread"     # emitting thread (tid lanes)

    def to_payload(self) -> dict:
        """JSON-safe dict (the JSONL record shape)."""
        payload: dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        if self.ts_ms is not None:
            payload["ts_ms"] = self.ts_ms
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.thread != "MainThread":
            payload["thread"] = self.thread
        payload.update(self.attrs)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "LifecycleEvent":
        """Inverse of :meth:`to_payload` (exporter round-trip)."""
        data = dict(payload)
        return cls(seq=data.pop("seq"), kind=data.pop("kind"),
                   ts_ms=data.pop("ts_ms", None),
                   trace_id=data.pop("trace_id", None),
                   thread=data.pop("thread", "MainThread"),
                   attrs=data)


class LifecycleLog:
    """Append-only event log; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[LifecycleEvent] = []
        self._lock = threading.Lock()
        self._seq = 0

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.events = []
            self._seq = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, *, ts_ms: Optional[float] = None,
             trace_id: Optional[str] = None,
             **attrs) -> Optional[LifecycleEvent]:
        """Record one event (no-op while disabled).

        ``trace_id`` defaults to the ambient :func:`current_trace`, so
        deep call sites (fault retries inside a worker thread, vector
        fallbacks inside the executor) attach to the request that
        caused them without plumbing.
        """
        if not self.enabled:
            return None
        if kind not in EVENT_KINDS:
            raise ConfigError(
                f"unknown lifecycle event kind {kind!r}; known kinds: "
                f"{', '.join(sorted(EVENT_KINDS))}")
        if trace_id is None:
            trace_id = _TRACE.get()
        with self._lock:
            event = LifecycleEvent(
                seq=self._seq, kind=kind, ts_ms=ts_ms,
                trace_id=trace_id, attrs=attrs,
                thread=threading.current_thread().name)
            self._seq += 1
            self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def snapshot(self) -> list[LifecycleEvent]:
        with self._lock:
            return list(self.events)

    def for_trace(self, trace_id: str) -> list[LifecycleEvent]:
        """Every event of one request, in emission order."""
        return [e for e in self.snapshot() if e.trace_id == trace_id]

    def of_kind(self, kind: str) -> list[LifecycleEvent]:
        return [e for e in self.snapshot() if e.kind == kind]

    def to_payloads(self) -> list[dict]:
        return [e.to_payload() for e in self.snapshot()]


#: Process-global lifecycle log, enabled alongside the tracer.
LIFECYCLE = LifecycleLog()


__all__ = [
    "EVENT_KINDS",
    "LIFECYCLE",
    "LifecycleEvent",
    "LifecycleLog",
    "current_trace",
    "reset_trace",
    "set_trace",
    "trace_context",
]
