"""Observability: compile-phase tracing, simulator counters, solver
telemetry, and serve-side request-lifecycle telemetry.

One switch governs the whole layer::

    from repro import obs

    obs.enable()
    compiled = compile_stream_program(graph, options)
    print(obs.summary())                   # phases + counters
    obs.write_chrome_trace("trace.json")   # load in chrome://tracing
    obs.disable()

While disabled (the default) every instrumentation site reduces to a
single boolean check: ``obs.span(...)`` returns a shared no-op context
manager, ``obs.emit(...)`` returns without recording, and no metric is
touched, so the compile pipeline's and serve loop's wall time is
unaffected.

The layer has six parts:

* :mod:`repro.obs.tracer` — nested wall-clock spans (the six compile
  phases, per-ILP-attempt spans, nested reference compiles);
* :mod:`repro.obs.metrics` — a process-global registry of all-time
  counters, gauges and histograms fed by the GPU simulator, the
  shared-bus model, and both ILP backends (see docs/observability.md
  for the catalog);
* :mod:`repro.obs.events` — the typed request-lifecycle event log
  with contextvar trace-id propagation (admission, shedding, batch
  firing, retries, breaker trips, degradation steps);
* :mod:`repro.obs.windows` — rolling-window counters/histograms over
  the serve runtime's simulated clock (the autoscaler/SLO signal);
* :mod:`repro.obs.slo` — declarative SLO specs, burn-rate and
  error-budget accounting, and the ``repro top`` dashboard renderer;
* :mod:`repro.obs.export` — Chrome trace-event JSON (wall lanes +
  simulated request lanes), plain JSON, JSONL event stream,
  OpenMetrics text exposition, and a human-readable summary table.
"""

from __future__ import annotations

from .events import (
    EVENT_KINDS,
    LIFECYCLE,
    LifecycleEvent,
    LifecycleLog,
    current_trace,
    reset_trace,
    set_trace,
    trace_context,
)
from .export import (
    chrome_trace,
    events_jsonl,
    openmetrics,
    parse_openmetrics,
    summary,
    to_json,
    write_chrome_trace,
    write_events_jsonl,
)
from .metrics import (
    EMPTY,
    REGISTRY,
    Counter,
    EmptySnapshot,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    metric_key,
)
from .slo import (
    SloError,
    SloMonitor,
    SloObjective,
    SloSpec,
    render_dashboard,
)
from .tracer import NULL_SPAN, TRACER, SpanRecord, Tracer
from .windows import (
    RollingCounter,
    RollingHistogram,
    WindowRegistry,
)

_enabled = False


def enable(reset: bool = False) -> None:
    """Turn the observability layer on (optionally from a clean slate)."""
    global _enabled
    if reset:
        clear()
    _enabled = True
    TRACER.enable()
    LIFECYCLE.enable()


def disable() -> None:
    """Turn the layer off; recorded data stays readable."""
    global _enabled
    _enabled = False
    TRACER.disable()
    LIFECYCLE.disable()


def is_enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop all recorded spans, metrics, and lifecycle events."""
    TRACER.clear()
    REGISTRY.reset()
    LIFECYCLE.clear()


def span(name: str, **attrs):
    """Open a span on the global tracer (no-op while disabled)."""
    return TRACER.span(name, **attrs)


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def emit(kind: str, **kwargs):
    """Record one lifecycle event (no-op while disabled)."""
    return LIFECYCLE.emit(kind, **kwargs)


def metrics_snapshot() -> dict:
    return REGISTRY.snapshot()


__all__ = [
    "EMPTY",
    "EVENT_KINDS",
    "Counter",
    "EmptySnapshot",
    "Gauge",
    "Histogram",
    "LIFECYCLE",
    "LifecycleEvent",
    "LifecycleLog",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "RollingCounter",
    "RollingHistogram",
    "SloError",
    "SloMonitor",
    "SloObjective",
    "SloSpec",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "WindowRegistry",
    "chrome_trace",
    "clear",
    "counter",
    "current_trace",
    "diff_snapshots",
    "disable",
    "emit",
    "enable",
    "events_jsonl",
    "gauge",
    "histogram",
    "is_enabled",
    "metric_key",
    "metrics_snapshot",
    "openmetrics",
    "parse_openmetrics",
    "render_dashboard",
    "reset_trace",
    "set_trace",
    "span",
    "summary",
    "to_json",
    "trace_context",
    "write_chrome_trace",
    "write_events_jsonl",
]
