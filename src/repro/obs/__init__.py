"""Observability: compile-phase tracing, simulator counters, solver
telemetry.

One switch governs the whole layer::

    from repro import obs

    obs.enable()
    compiled = compile_stream_program(graph, options)
    print(obs.summary())                   # phases + counters
    obs.write_chrome_trace("trace.json")   # load in chrome://tracing
    obs.disable()

While disabled (the default) every instrumentation site reduces to a
single boolean check: ``obs.span(...)`` returns a shared no-op context
manager and no metric is touched, so the compile pipeline's wall time
is unaffected.

The layer has three parts:

* :mod:`repro.obs.tracer` — nested wall-clock spans (the six compile
  phases, per-ILP-attempt spans, nested reference compiles);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and histograms fed by the GPU simulator, the shared-bus
  model, and both ILP backends (see docs/observability.md for the
  catalog);
* :mod:`repro.obs.export` — Chrome trace-event JSON, plain JSON, and
  a human-readable summary table.
"""

from __future__ import annotations

from .export import chrome_trace, summary, to_json, write_chrome_trace
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    metric_key,
)
from .tracer import NULL_SPAN, TRACER, SpanRecord, Tracer

_enabled = False


def enable(reset: bool = False) -> None:
    """Turn the observability layer on (optionally from a clean slate)."""
    global _enabled
    if reset:
        clear()
    _enabled = True
    TRACER.enable()


def disable() -> None:
    """Turn the layer off; recorded data stays readable."""
    global _enabled
    _enabled = False
    TRACER.disable()


def is_enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop all recorded spans and metrics."""
    TRACER.clear()
    REGISTRY.reset()


def span(name: str, **attrs):
    """Open a span on the global tracer (no-op while disabled)."""
    return TRACER.span(name, **attrs)


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def metrics_snapshot() -> dict:
    return REGISTRY.snapshot()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "chrome_trace",
    "clear",
    "counter",
    "diff_snapshots",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "is_enabled",
    "metric_key",
    "metrics_snapshot",
    "span",
    "summary",
    "to_json",
    "write_chrome_trace",
]
