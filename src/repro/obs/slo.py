"""Declarative SLOs: spec grammar, rolling evaluation, burn rates.

An SLO spec is a comma-separated list of objectives over the serving
runtime's *rolling-window* signals::

    p99_latency_ms<0.5,error_rate<0.01,shed_rate<0.2,budget=0.1

Each objective compares one windowed metric against a bound with one
of ``<``, ``<=``, ``>``, ``>=``.  The optional ``budget`` knob is the
allowed *breach fraction*: the share of evaluation windows that may
violate their objective before the error budget is exhausted (default
:data:`DEFAULT_BUDGET`).

The :class:`SloMonitor` is fed one evaluation per session per window
boundary by :class:`~repro.serve.server.StreamServer` and keeps, per
(session, objective):

* the latest observation and verdict,
* cumulative evaluations/breaches → **breach fraction** and **budget
  spent** (breach fraction over the allowed budget, 1.0 = exhausted),
* the instantaneous **burn rate** — observed value over the bound for
  upper-bound objectives (>= 1 means the window is breaching; the
  classic "how fast is the budget burning" signal an alerting rule
  pages on).

Windows whose metric is unobservable (an empty latency window renders
the typed :data:`~repro.obs.metrics.EMPTY` marker) are *skipped*, not
counted as compliant — silence must never repair a budget.

Everything the monitor knows is machine-readable via
:meth:`SloMonitor.snapshot`; :func:`render_dashboard` turns a server
health snapshot into the ``repro top``-style text frame the CLI
prints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from ..errors import ConfigError

#: Allowed breach fraction when the spec does not set ``budget=``.
DEFAULT_BUDGET = 0.1

#: Comparison operators an objective may use.
OPS = ("<=", "<", ">=", ">")

#: The windowed metrics an objective may bound, with a short
#: description (docs + error messages) and the direction a *healthy*
#: value lies in relative to the bound.
SLO_METRICS: dict[str, str] = {
    "p50_latency_ms": "median request latency over the window",
    "p95_latency_ms": "p95 request latency over the window",
    "p99_latency_ms": "p99 request latency over the window",
    "mean_latency_ms": "mean request latency over the window",
    "max_latency_ms": "worst request latency over the window",
    "error_rate": "failed / (served + failed) over the window",
    "shed_rate": "shed / admitted-or-shed requests over the window",
    "throughput_rps": "served requests per second over the window",
}


class SloError(ConfigError):
    """A malformed SLO spec (subclass of the repo-wide ConfigError)."""


_OBJECTIVE_RE = re.compile(
    r"^\s*(?P<metric>[a-z0-9_]+)\s*(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+0-9.eE]+)\s*$")


@dataclass(frozen=True)
class SloObjective:
    """One bound on one windowed metric."""

    metric: str
    op: str
    threshold: float

    def __str__(self) -> str:
        return f"{self.metric}{self.op}{self.threshold:g}"

    def holds(self, observed: float) -> bool:
        if self.op == "<":
            return observed < self.threshold
        if self.op == "<=":
            return observed <= self.threshold
        if self.op == ">":
            return observed > self.threshold
        return observed >= self.threshold

    def burn_rate(self, observed: float) -> float:
        """How hot the window runs against the bound (1.0 = at the
        bound, above 1.0 = breaching).  For lower-bound objectives
        (``throughput_rps>X``) the ratio inverts so "bigger is worse"
        stays true for alerting."""
        if self.op in ("<", "<="):
            if self.threshold == 0:
                return float("inf") if observed > 0 else 0.0
            return observed / self.threshold
        if observed == 0:
            return float("inf") if self.threshold > 0 else 0.0
        return self.threshold / observed


@dataclass(frozen=True)
class SloSpec:
    """A parsed ``--slo`` string: objectives plus the error budget."""

    objectives: tuple[SloObjective, ...]
    budget: float = DEFAULT_BUDGET

    def __str__(self) -> str:
        parts = [str(o) for o in self.objectives]
        parts.append(f"budget={self.budget:g}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: Union[str, "SloSpec", None]
              ) -> Optional["SloSpec"]:
        """Parse a spec string; ``None``/empty disables monitoring."""
        if text is None or isinstance(text, SloSpec):
            return text
        text = text.strip()
        if not text or text.lower() in ("off", "none"):
            return None
        objectives: list[SloObjective] = []
        budget = DEFAULT_BUDGET
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.lower().startswith("budget="):
                raw = chunk.partition("=")[2]
                try:
                    budget = float(raw)
                except ValueError:
                    raise SloError(
                        f"SLO budget must be numeric, got {raw!r}") \
                        from None
                if not 0.0 < budget <= 1.0:
                    raise SloError(
                        f"SLO budget {budget:g} outside (0, 1]")
                continue
            match = _OBJECTIVE_RE.match(chunk)
            if match is None:
                raise SloError(
                    f"SLO objective {chunk!r} is not "
                    f"metric{'|'.join(OPS)}value "
                    f"(full spec: {text!r})")
            metric = match.group("metric")
            if metric not in SLO_METRICS:
                raise SloError(
                    f"unknown SLO metric {metric!r}; choose from: "
                    f"{', '.join(sorted(SLO_METRICS))}")
            try:
                threshold = float(match.group("threshold"))
            except ValueError:
                raise SloError(
                    f"SLO threshold in {chunk!r} is not numeric") \
                    from None
            objectives.append(SloObjective(metric=metric,
                                           op=match.group("op"),
                                           threshold=threshold))
        if not objectives:
            raise SloError(
                f"SLO spec {text!r} declares no objectives")
        return cls(objectives=tuple(objectives), budget=budget)


def metric_from_window(metric: str, window: Mapping[str, Any]):
    """Extract one SLO metric from a session's window-stats dict.

    Returns ``None`` when the metric is unobservable in this window
    (e.g. a latency percentile of a window that served nothing).
    """
    latency = window.get("latency_ms") or {}
    if metric.endswith("_latency_ms"):
        if latency.get("empty") or not latency:
            return None
        head = metric[:-len("_latency_ms")]
        key = {"mean": "mean", "max": "max"}.get(head, head)
        return latency.get(key)
    return window.get(metric)


@dataclass
class _ObjectiveState:
    """Cumulative accounting of one (session, objective) pair."""

    evals: int = 0
    breaches: int = 0
    consecutive_breaches: int = 0
    last_observed: Optional[float] = None
    last_ok: Optional[bool] = None
    last_burn_rate: float = 0.0


@dataclass
class SloVerdict:
    """One machine-readable evaluation outcome."""

    session: str
    objective: SloObjective
    observed: Optional[float]
    ok: Optional[bool]             # None = unobservable this window
    burn_rate: float
    now_ms: float

    def to_payload(self) -> dict:
        return {
            "session": self.session,
            "objective": str(self.objective),
            "metric": self.objective.metric,
            "op": self.objective.op,
            "threshold": self.objective.threshold,
            "observed": self.observed,
            "ok": self.ok,
            "burn_rate": self.burn_rate,
            "now_ms": self.now_ms,
        }


class SloMonitor:
    """Evaluates an :class:`SloSpec` over per-session window stats."""

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self._state: dict[tuple[str, SloObjective], _ObjectiveState] = {}

    # ------------------------------------------------------------------
    def evaluate(self, session: str, window: Mapping[str, Any],
                 now_ms: float) -> list[SloVerdict]:
        """Judge every objective against one session's window stats."""
        verdicts = []
        for objective in self.spec.objectives:
            state = self._state.setdefault((session, objective),
                                           _ObjectiveState())
            observed = metric_from_window(objective.metric, window)
            if observed is None:
                verdicts.append(SloVerdict(
                    session=session, objective=objective, observed=None,
                    ok=None, burn_rate=state.last_burn_rate,
                    now_ms=now_ms))
                continue
            ok = objective.holds(observed)
            burn = objective.burn_rate(observed)
            state.evals += 1
            state.last_observed = observed
            state.last_ok = ok
            state.last_burn_rate = burn
            if ok:
                state.consecutive_breaches = 0
            else:
                state.breaches += 1
                state.consecutive_breaches += 1
            verdicts.append(SloVerdict(
                session=session, objective=objective, observed=observed,
                ok=ok, burn_rate=burn, now_ms=now_ms))
        return verdicts

    # ------------------------------------------------------------------
    def _row(self, session: str,
             objective: SloObjective) -> dict[str, Any]:
        state = self._state.get((session, objective), _ObjectiveState())
        breach_fraction = (state.breaches / state.evals
                           if state.evals else 0.0)
        budget_spent = breach_fraction / self.spec.budget
        return {
            "objective": str(objective),
            "metric": objective.metric,
            "op": objective.op,
            "threshold": objective.threshold,
            "observed": state.last_observed,
            "ok": state.last_ok,
            "burn_rate": state.last_burn_rate,
            "evals": state.evals,
            "breaches": state.breaches,
            "consecutive_breaches": state.consecutive_breaches,
            "breach_fraction": breach_fraction,
            "budget": self.spec.budget,
            "budget_spent": budget_spent,
            "budget_exhausted": budget_spent >= 1.0,
        }

    def session_rows(self, session: str) -> list[dict[str, Any]]:
        return [self._row(session, objective)
                for objective in self.spec.objectives]

    def sessions(self) -> list[str]:
        return sorted({session for session, _ in self._state})

    def healthy(self) -> bool:
        """True while no objective's latest verdict is a breach."""
        return all(state.last_ok is not False
                   for state in self._state.values())

    def snapshot(self) -> dict[str, Any]:
        """The full machine-readable SLO state."""
        return {
            "spec": str(self.spec),
            "budget": self.spec.budget,
            "healthy": self.healthy(),
            "sessions": {session: self.session_rows(session)
                         for session in self.sessions()},
        }

    # -- durable state (checkpoint/restore) ----------------------------
    def dump_state(self) -> list[list]:
        """JSON-safe cumulative accounting, keyed by objective index
        within the spec (the spec itself travels in the server's own
        configuration, not the checkpoint)."""
        index = {objective: i
                 for i, objective in enumerate(self.spec.objectives)}
        return [[session, index[objective], state.evals,
                 state.breaches, state.consecutive_breaches,
                 state.last_observed, state.last_ok,
                 state.last_burn_rate]
                for (session, objective), state in self._state.items()
                if objective in index]

    def load_state(self, rows: list) -> None:
        """Restore :meth:`dump_state` output into a monitor built over
        the same spec, so burn-rate streaks (and the autoscaling
        decisions they drive) survive a crash/restore cycle."""
        self._state.clear()
        objectives = list(self.spec.objectives)
        for row in rows:
            (session, obj_index, evals, breaches, consecutive,
             last_observed, last_ok, last_burn) = row
            if not 0 <= int(obj_index) < len(objectives):
                continue
            state = _ObjectiveState(
                evals=int(evals), breaches=int(breaches),
                consecutive_breaches=int(consecutive),
                last_observed=last_observed, last_ok=last_ok,
                last_burn_rate=float(last_burn))
            self._state[(session, objectives[int(obj_index)])] = state


# ----------------------------------------------------------------------
# the `repro top`-style dashboard
# ----------------------------------------------------------------------
def _fmt(value, width: int = 7, digits: int = 3) -> str:
    if value is None:
        return f"{'-':>{width}}"
    if value == float("inf"):
        return f"{'inf':>{width}}"
    return f"{value:>{width}.{digits}f}"


def render_dashboard(health: Mapping[str, Any]) -> str:
    """One ``repro top``-style text frame from a health snapshot
    (:meth:`~repro.serve.server.StreamServer.health_snapshot`)."""
    now = health.get("now_ms", 0.0)
    window = health.get("window_ms", 0.0)
    slo_ok = health.get("slo_ok")
    state = ("no slo" if slo_ok is None
             else "OK" if slo_ok else "BREACH")
    lines = [f"repro top — t={now:.3f} ms  window={window:g} ms  "
             f"sessions={len(health.get('sessions', {}))}  slo={state}"]
    lines.append(
        f"{'session':<12} {'q':>3} {'state':<9} {'rps':>9} "
        f"{'p50ms':>7} {'p95ms':>7} {'p99ms':>7} "
        f"{'shed%':>6} {'err%':>6} {'burn':>6}")
    for name in sorted(health.get("sessions", {})):
        row = health["sessions"][name]
        win = row.get("window", {})
        latency = win.get("latency_ms", {})
        empty = latency.get("empty", not latency)
        burn = max((slo.get("burn_rate") or 0.0
                    for slo in row.get("slo", [])), default=None)
        lines.append(
            f"{name:<12} {row.get('queue_depth', 0):>3} "
            f"{row.get('breaker', {}).get('state', '-'):<9} "
            f"{win.get('throughput_rps', 0.0):>9.1f} "
            f"{_fmt(None if empty else latency.get('p50'))} "
            f"{_fmt(None if empty else latency.get('p95'))} "
            f"{_fmt(None if empty else latency.get('p99'))} "
            f"{100 * win.get('shed_rate', 0.0):>6.1f} "
            f"{100 * win.get('error_rate', 0.0):>6.1f} "
            f"{_fmt(burn, width=6, digits=2)}")
    shards = health.get("shards") or {}
    if shards:
        lines.append(
            f"{'shard':<6} {'state':<7} {'hosted':>6} {'q':>3} "
            f"{'p99ms':>7} {'steal_in':>8} {'steal_out':>9} "
            f"{'breakers':<20}")
        for sid in sorted(shards, key=lambda s: int(s)):
            row = shards[sid]
            open_breakers = sorted(
                name for name, state
                in (row.get("breakers") or {}).items()
                if state != "closed")
            lines.append(
                f"{sid:<6} "
                f"{'alive' if row.get('alive') else 'dead':<7} "
                f"{len(row.get('hosted', [])):>6} "
                f"{row.get('queue_depth', 0):>3} "
                f"{_fmt(row.get('p99_ms'))} "
                f"{row.get('steals_in', 0):>8} "
                f"{row.get('steals_out', 0):>9} "
                f"{','.join(open_breakers) or '-':<20}")
    breaches = []
    for name in sorted(health.get("sessions", {})):
        for slo in health["sessions"][name].get("slo", []):
            if slo.get("ok") is False or slo.get("budget_exhausted"):
                breaches.append(
                    f"  {name}: {slo['objective']} observed="
                    f"{_fmt(slo.get('observed'), width=1)} "
                    f"burn={slo.get('burn_rate', 0.0):.2f} "
                    f"budget {100 * min(1.0, slo.get('budget_spent', 0.0)):.0f}% spent"
                    + (" [EXHAUSTED]" if slo.get("budget_exhausted")
                       else ""))
    if breaches:
        lines.append("slo breaches:")
        lines.extend(breaches)
    return "\n".join(lines)


__all__ = [
    "DEFAULT_BUDGET",
    "SLO_METRICS",
    "SloError",
    "SloMonitor",
    "SloObjective",
    "SloSpec",
    "SloVerdict",
    "metric_from_window",
    "render_dashboard",
]
