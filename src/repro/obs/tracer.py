"""Lightweight nested-span tracer.

A :class:`Tracer` records *spans* — named wall-clock intervals with
optional attributes — organized as a tree by lexical nesting::

    with tracer.span("compile", scheme="swp"):
        with tracer.span("profile"):
            ...

Design constraints (this sits on the compile hot path):

* **Zero overhead when disabled.**  ``span()`` on a disabled tracer
  returns one shared, state-free null context manager — no allocation,
  no clock read, no stack manipulation.
* **Exception safe.**  A span's end time is stamped in ``__exit__``
  regardless of how the block terminates, and the nesting stack is
  always popped.
* **Export friendly.**  Completed spans keep their start time, depth
  and parent index, which is exactly what the Chrome trace-event
  exporter (:mod:`repro.obs.export`) needs.

Times come from ``time.perf_counter()`` and are recorded in seconds
relative to the tracer's first span (the exporters convert units).

The tracer is thread-safe: the completed-span list is guarded by a
lock, and the nesting stack is *per thread*, so spans opened inside
:mod:`repro.parallel` worker threads nest under their own thread's
context instead of corrupting the main thread's stack.  Each span
records the opening thread's name so exporters can lane-split traces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    name: str
    start: float                      # perf_counter seconds
    end: Optional[float] = None       # None while the span is open
    depth: int = 0                    # nesting level, root = 0
    parent: Optional[int] = None      # index into Tracer.spans
    index: int = 0                    # position in Tracer.spans
    attrs: dict[str, Any] = field(default_factory=dict)
    thread: str = "MainThread"        # name of the opening thread

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton null span — identity-comparable in tests.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one live span on one tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, *exc) -> bool:
        self.record.end = time.perf_counter()
        stack = self._tracer._thread_stack()
        if stack and stack[-1] is self.record:
            stack.pop()
        return False


class Tracer:
    """Collects a tree of timed spans; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _thread_stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a span; use as ``with tracer.span("phase"):``.

        Returns the shared :data:`NULL_SPAN` when disabled, so the
        disabled path costs one attribute load and one branch.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._thread_stack()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            name=name,
            start=time.perf_counter(),
            depth=len(stack),
            parent=parent.index if parent is not None else None,
            attrs=attrs,
            thread=threading.current_thread().name)
        with self._lock:
            record.index = len(self.spans)
            self.spans.append(record)
        stack.append(record)
        return _ActiveSpan(self, record)

    # ------------------------------------------------------------------
    def completed(self) -> list[SpanRecord]:
        """Spans that have both endpoints, in start order."""
        return [s for s in self.spans if s.end is not None]

    def find(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]


#: Process-global tracer used by the instrumented compile pipeline.
TRACER = Tracer()
