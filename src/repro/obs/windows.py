"""Rolling-window metrics: ring-buffered buckets over a caller clock.

The all-time instruments in :mod:`repro.obs.metrics` answer "what
happened since the process started"; a serving runtime needs "what is
happening *now*" — the p99 over the last second, the shed rate over
the last ten windows — because that is the signal an autoscaler or an
SLO monitor actually consumes.  This module provides that shape:

* :class:`RollingCounter` — a windowed event count/sum, queryable as a
  total or a per-second rate over the live window;
* :class:`RollingHistogram` — a windowed distribution with
  count/sum/min/max plus capped samples per bucket, queryable as
  p50/p95/p99 over the live window;
* :class:`WindowRegistry` — a labelled registry of both, mirroring the
  ``name{label=value}`` keying of the all-time registry.

Both instruments are a fixed ring of ``buckets`` buckets, each
covering ``window_ms / buckets`` of clock time.  The clock is supplied
by the *caller* on every update and query — the serving runtime feeds
its deterministic simulated milliseconds, so a replayed workload
produces bit-identical window snapshots; nothing here reads wall
time.  A bucket is lazily reset when the clock re-enters its ring slot
in a later epoch, so updates are O(1) and no background sweeper is
needed.  Clocks that jump backwards (a fresh replay) simply recycle
the stale buckets: snapshots only aggregate buckets whose epoch lies
inside the current window.

Queries on a window that saw no samples return the typed
:data:`~repro.obs.metrics.EMPTY` marker for percentiles, never a
fabricated 0.0 — identical to the all-time histogram contract.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Mapping, Optional, Sequence

from ..errors import ConfigError
from .metrics import EMPTY, REPORTED_PERCENTILES, metric_key

#: Raw samples retained per bucket (aggregates keep updating past it).
BUCKET_SAMPLE_CAP = 512

#: Default bucket count of one rolling window.
DEFAULT_BUCKETS = 10

_LOCK = threading.Lock()


class _Bucket:
    """One ring slot: the aggregates of one bucket-sized time slice."""

    __slots__ = ("epoch", "count", "total", "minimum", "maximum",
                 "samples")

    def __init__(self) -> None:
        self.reset(-1)

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.samples: list[float] = []


class _Ring:
    """Shared ring mechanics of the two windowed instruments."""

    __slots__ = ("window_ms", "bucket_ms", "_buckets")

    def __init__(self, window_ms: float,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        if window_ms <= 0:
            raise ConfigError(
                f"rolling window must be positive, got {window_ms!r} ms")
        if buckets < 1:
            raise ConfigError(
                f"rolling window needs >= 1 bucket, got {buckets}")
        self.window_ms = float(window_ms)
        self.bucket_ms = self.window_ms / buckets
        self._buckets = [_Bucket() for _ in range(buckets)]

    def _bucket_at(self, now_ms: float) -> _Bucket:
        """The live bucket for ``now_ms``, reset on epoch turnover."""
        epoch = int(now_ms // self.bucket_ms)
        bucket = self._buckets[epoch % len(self._buckets)]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def record(self, now_ms: float, value: float) -> None:
        value = float(value)
        with _LOCK:
            bucket = self._bucket_at(now_ms)
            bucket.count += 1
            bucket.total += value
            bucket.minimum = min(bucket.minimum, value)
            bucket.maximum = max(bucket.maximum, value)
            if len(bucket.samples) < BUCKET_SAMPLE_CAP:
                bucket.samples.append(value)

    def _live(self, now_ms: float) -> list[_Bucket]:
        """Buckets whose slice intersects ``(now - window, now]``."""
        epoch = int(now_ms // self.bucket_ms)
        lo = epoch - len(self._buckets) + 1
        return [b for b in self._buckets if lo <= b.epoch <= epoch]

    # -- durable state (checkpoint/restore) ----------------------------
    def dump_state(self) -> list[list]:
        """JSON-safe ring contents.  Empty buckets carry ``None`` for
        min/max (their sentinel infinities are not JSON numbers)."""
        with _LOCK:
            return [[b.epoch, b.count, b.total,
                     None if b.count == 0 else b.minimum,
                     None if b.count == 0 else b.maximum,
                     list(b.samples)]
                    for b in self._buckets]

    def load_state(self, state: list) -> None:
        """Restore ring contents dumped by :meth:`dump_state` into an
        instrument built with the same geometry."""
        if len(state) != len(self._buckets):
            raise ConfigError(
                f"rolling-window state has {len(state)} buckets, "
                f"instrument has {len(self._buckets)}")
        with _LOCK:
            for bucket, row in zip(self._buckets, state):
                epoch, count, total, minimum, maximum, samples = row
                bucket.reset(int(epoch))
                bucket.count = int(count)
                bucket.total = float(total)
                bucket.minimum = (math.inf if minimum is None
                                  else float(minimum))
                bucket.maximum = (-math.inf if maximum is None
                                  else float(maximum))
                bucket.samples = [float(s) for s in samples]


class RollingCounter(_Ring):
    """Windowed monotone count: events (and their summed amount) that
    happened inside the live window."""

    def add(self, now_ms: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("rolling counters only increase")
        self.record(now_ms, amount)

    def total(self, now_ms: float) -> float:
        """Summed amounts over the live window."""
        with _LOCK:
            return sum(b.total for b in self._live(now_ms))

    def rate_per_s(self, now_ms: float) -> float:
        """Amount per second of clock time over the live window."""
        return self.total(now_ms) / (self.window_ms / 1e3)

    def snapshot(self, now_ms: float) -> dict[str, float]:
        total = self.total(now_ms)
        return {"total": total,
                "rate_per_s": total / (self.window_ms / 1e3),
                "window_ms": self.window_ms}


class RollingHistogram(_Ring):
    """Windowed distribution: stats over the live window only."""

    def stats(self, now_ms: float) -> dict[str, Any]:
        """count/sum/min/max/mean plus the reporting percentiles, all
        restricted to the live window.  An empty window reports only
        its zero count plus an ``empty`` flag, and percentiles come
        back as the typed :data:`~repro.obs.metrics.EMPTY` marker —
        the same no-misleading-zeros contract as the all-time
        histogram."""
        with _LOCK:
            live = self._live(now_ms)
            count = sum(b.count for b in live)
            if not count:
                return {"count": 0.0, "sum": 0.0, "empty": True,
                        "window_ms": self.window_ms}
            total = sum(b.total for b in live)
            samples = sorted(s for b in live for s in b.samples)
        stats: dict[str, Any] = {
            "count": float(count),
            "sum": total,
            "min": min(b.minimum for b in live),
            "max": max(b.maximum for b in live),
            "mean": total / count,
            "window_ms": self.window_ms,
        }
        for q in REPORTED_PERCENTILES:
            rank = min(len(samples) - 1,
                       max(0, round(q / 100.0 * (len(samples) - 1))))
            stats[f"p{q:g}"] = samples[rank]
        return stats

    def percentile(self, now_ms: float, q: float):
        """One windowed percentile (:data:`EMPTY` when the window is
        empty)."""
        stats = self.stats(now_ms)
        if stats.get("empty"):
            return EMPTY
        key = f"p{q:g}"
        if key in stats:
            return stats[key]
        with _LOCK:
            samples = sorted(s for b in self._live(now_ms)
                             for s in b.samples)
        if not samples:
            return EMPTY
        rank = min(len(samples) - 1,
                   max(0, round(q / 100.0 * (len(samples) - 1))))
        return samples[rank]


class WindowRegistry:
    """Labelled rolling instruments sharing one window geometry.

    The serving runtime holds one registry per server; keys follow the
    all-time registry's ``name{label=value,...}`` convention so the
    two snapshot shapes line up in exports.
    """

    def __init__(self, window_ms: float,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        if window_ms <= 0:
            raise ConfigError(
                f"rolling window must be positive, got {window_ms!r} ms")
        self.window_ms = float(window_ms)
        self.buckets = int(buckets)
        self.counters: dict[str, RollingCounter] = {}
        self.histograms: dict[str, RollingHistogram] = {}

    def counter(self, name: str, **labels) -> RollingCounter:
        key = metric_key(name, labels)
        instrument = self.counters.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self.counters.setdefault(
                    key, RollingCounter(self.window_ms, self.buckets))
        return instrument

    def histogram(self, name: str, **labels) -> RollingHistogram:
        key = metric_key(name, labels)
        instrument = self.histograms.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self.histograms.setdefault(
                    key, RollingHistogram(self.window_ms, self.buckets))
        return instrument

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()

    def dump_state(self) -> dict:
        """JSON-safe registry contents for a durable checkpoint."""
        return {
            "window_ms": self.window_ms,
            "buckets": self.buckets,
            "counters": {k: c.dump_state()
                         for k, c in self.counters.items()},
            "histograms": {k: h.dump_state()
                           for k, h in self.histograms.items()},
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild every instrument from :meth:`dump_state` output.
        The registry must have been constructed with the same window
        geometry as the dumping one."""
        if (float(state["window_ms"]) != self.window_ms
                or int(state["buckets"]) != self.buckets):
            raise ConfigError(
                "rolling-window geometry mismatch: checkpoint has "
                f"{state['window_ms']} ms / {state['buckets']} buckets, "
                f"registry has {self.window_ms} ms / {self.buckets}")
        self.reset()
        for key, rows in state["counters"].items():
            ring = RollingCounter(self.window_ms, self.buckets)
            ring.load_state(rows)
            self.counters[key] = ring
        for key, rows in state["histograms"].items():
            ring = RollingHistogram(self.window_ms, self.buckets)
            ring.load_state(rows)
            self.histograms[key] = ring

    def snapshot(self, now_ms: float) -> dict[str, dict]:
        """Plain-data view of every instrument over its live window
        at ``now_ms`` (JSON-safe: empty percentiles are omitted, not
        faked)."""
        histograms = {}
        for key, hist in self.histograms.items():
            stats = hist.stats(now_ms)
            histograms[key] = {k: v for k, v in stats.items()
                               if not isinstance(v, type(EMPTY))}
        return {
            "window_ms": self.window_ms,
            "now_ms": now_ms,
            "counters": {k: c.snapshot(now_ms)
                         for k, c in self.counters.items()},
            "histograms": histograms,
        }


def windowed_value(registry: WindowRegistry, now_ms: float, name: str,
                   labels: Optional[Mapping[str, Any]] = None,
                   percentiles: Sequence[float] = REPORTED_PERCENTILES):
    """Convenience: one metric's windowed reading by flat key."""
    key = metric_key(name, dict(labels or {}))
    if key in registry.counters:
        return registry.counters[key].snapshot(now_ms)
    if key in registry.histograms:
        return registry.histograms[key].stats(now_ms)
    return None


__all__ = [
    "BUCKET_SAMPLE_CAP",
    "DEFAULT_BUCKETS",
    "RollingCounter",
    "RollingHistogram",
    "WindowRegistry",
    "windowed_value",
]
