"""Process-global metrics registry: counters, gauges, histograms.

The instrumented subsystems (GPU simulator, ILP solvers, II search)
accumulate into one :data:`REGISTRY`; exporters and the CLI read
snapshots out of it.  Metrics are identified by a name plus optional
label key/values, Prometheus style::

    REGISTRY.counter("gpu.bus.transactions", kind="coalesced").add(5)

renders in snapshots as ``gpu.bus.transactions{kind=coalesced}``.

The registry itself never checks an enabled flag — callers on hot
paths guard with :func:`repro.obs.is_enabled` *once* and then issue
their updates, which keeps the disabled path at a single branch.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Mapping, Sequence

from ..errors import ConfigError

#: Histograms keep raw samples up to this count (aggregates keep
#: updating beyond it), bounding memory for long sessions.
HISTOGRAM_SAMPLE_CAP = 4096

#: Quantiles every histogram reports in snapshots and summaries (the
#: serving layer's latency SLO view: median, tail, extreme tail).
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)

#: One lock shared by every instrument: updates can arrive from
#: repro.parallel worker threads, and read-modify-write sequences like
#: ``self.value += amount`` are not atomic.  Contention is negligible
#: at the layer's update rates, and a single lock keeps the instruments
#: slot-sized.
_LOCK = threading.Lock()


class EmptySnapshot:
    """Typed marker for "no samples recorded".

    A percentile of an empty histogram is not 0.0 — reporting it as
    such makes a silent session look like a zero-latency one in
    ``repro stats``.  Queries against empty distributions return the
    :data:`EMPTY` singleton instead, which is falsy, renders as
    ``(empty)``, and compares equal only to itself.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "(empty)"

    def __bool__(self) -> bool:
        return False


#: The singleton empty-distribution marker.
EMPTY = EmptySnapshot()


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only increase; use a gauge")
        with _LOCK:
            self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution: count/sum/min/max plus capped samples."""

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        value = float(value)
        with _LOCK:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
                self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float):
        """Approximate percentile from the retained samples, or the
        typed :data:`EMPTY` marker when nothing has been recorded."""
        if not self.samples:
            return EMPTY
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1,
                   max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def percentiles(self, qs: Sequence[float] = REPORTED_PERCENTILES
                    ) -> dict[str, float]:
        """The reporting quantiles (p50/p95/p99 by default), computed
        in one pass over the sorted retained samples.  Empty
        distributions map every quantile to :data:`EMPTY`."""
        if not self.samples:
            return {f"p{q:g}": EMPTY for q in qs}
        ordered = sorted(self.samples)
        out = {}
        for q in qs:
            rank = min(len(ordered) - 1,
                       max(0, round(q / 100.0 * (len(ordered) - 1))))
            out[f"p{q:g}"] = ordered[rank]
        return out

    def stats(self) -> dict[str, float]:
        """Plain-data summary.  An empty histogram reports only its
        zero count plus an ``empty`` flag — no fabricated 0.0
        min/max/mean/percentiles (see :class:`EmptySnapshot`)."""
        if not self.count:
            return {"count": 0.0, "sum": 0.0, "empty": True}
        stats = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        stats.update(self.percentiles())
        return stats


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical flat key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds all metric instruments, keyed by their flat name."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        instrument = self.counters.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self.counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        instrument = self.gauges.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self.gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = metric_key(name, labels)
        instrument = self.histograms.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self.histograms.setdefault(key, Histogram())
        return instrument

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def snapshot(self) -> dict[str, dict]:
        """Plain-data copy of every instrument's current state."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: g.value for k, g in self.gauges.items()},
            "histograms": {k: h.stats()
                           for k, h in self.histograms.items()},
        }


def diff_snapshots(before: Mapping[str, dict],
                   after: Mapping[str, dict]) -> dict[str, dict]:
    """What happened between two snapshots.

    Counters and histogram count/sum subtract; gauges and histogram
    min/max/mean take the *after* value (they are instantaneous and
    approximate over an interval, respectively).
    """
    counters = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta:
            counters[key] = delta
    gauges = dict(after.get("gauges", {}))
    histograms = {}
    for key, stats in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(key)
        if prior is None:
            histograms[key] = dict(stats)
            continue
        delta_count = stats["count"] - prior["count"]
        if delta_count <= 0:
            continue
        delta_sum = stats["sum"] - prior["sum"]
        row = {
            "count": delta_count,
            "sum": delta_sum,
            "min": stats["min"],
            "max": stats["max"],
            "mean": delta_sum / delta_count,
        }
        # Percentiles are over the retained samples, not the interval;
        # like min/max they carry the *after* value.
        for name, value in stats.items():
            if name.startswith("p"):
                row[name] = value
        histograms[key] = row
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


#: Process-global registry used by the instrumented subsystems.
REGISTRY = MetricsRegistry()
