"""Exporters for the observability layer.

Three consumers, three formats:

* :func:`chrome_trace` — the Chrome/Perfetto trace-event JSON format
  (load via ``chrome://tracing`` or https://ui.perfetto.dev): complete
  ("X") events whose nesting renders as a flame graph, with the metric
  snapshot attached under ``otherData``.
* :func:`to_json` — a plain structured dump (spans + metrics) for
  programmatic post-processing.
* :func:`summary` — a human-readable text report: the compile-phase
  span tree with wall times, then every counter/gauge/histogram.
"""

from __future__ import annotations

import json
from typing import Optional

from .metrics import REGISTRY, MetricsRegistry
from .tracer import TRACER, Tracer


def _span_dicts(tracer: Tracer) -> list[dict]:
    base = tracer.spans[0].start if tracer.spans else 0.0
    out = []
    for span in tracer.spans:
        out.append({
            "name": span.name,
            "start_s": span.start - base,
            "duration_s": span.duration,
            "depth": span.depth,
            "parent": span.parent,
            "attrs": dict(span.attrs),
        })
    return out


# ----------------------------------------------------------------------
def chrome_trace(tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None) -> dict:
    """Build a ``chrome://tracing``-loadable trace-event document."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    base = tracer.spans[0].start if tracer.spans else 0.0
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": "repro compile"},
    }]
    for span in tracer.spans:
        if span.end is None:
            continue
        events.append({
            "name": span.name,
            "cat": "compile",
            "ph": "X",
            "ts": (span.start - base) * 1e6,    # microseconds
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": 0,
            "args": {str(k): v for k, v in span.attrs.items()},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": registry.snapshot()},
    }


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None,
                       registry: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, registry), handle, indent=1)


# ----------------------------------------------------------------------
def to_json(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None) -> dict:
    """Structured dump: every span and the full metric snapshot."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    return {"spans": _span_dicts(tracer), "metrics": registry.snapshot()}


# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


def summary(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None) -> str:
    """Human-readable report: span tree, counters, gauges, histograms."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []

    completed = tracer.completed()
    if completed:
        lines.append("== phases ==")
        width = max(len("  " * s.depth + s.name) for s in completed)
        for span in completed:
            label = "  " * span.depth + span.name
            attrs = ""
            if span.attrs:
                attrs = "  (" + ", ".join(
                    f"{k}={v}" for k, v in span.attrs.items()) + ")"
            lines.append(f"{label:<{width}}  "
                         f"{span.duration * 1e3:>10.2f} ms{attrs}")

    snap = registry.snapshot()
    if snap["counters"]:
        lines.append("")
        lines.append("== counters ==")
        width = max(len(k) for k in snap["counters"])
        for key in sorted(snap["counters"]):
            lines.append(f"{key:<{width}}  "
                         f"{_format_value(snap['counters'][key]):>16}")
    if snap["gauges"]:
        lines.append("")
        lines.append("== gauges ==")
        width = max(len(k) for k in snap["gauges"])
        for key in sorted(snap["gauges"]):
            lines.append(f"{key:<{width}}  "
                         f"{_format_value(snap['gauges'][key]):>16}")
    if snap["histograms"]:
        lines.append("")
        lines.append("== histograms ==")
        for key in sorted(snap["histograms"]):
            stats = snap["histograms"][key]
            quantiles = " ".join(
                f"{name}={stats[name]:,.2f}"
                for name in ("p50", "p95", "p99") if name in stats)
            lines.append(
                f"{key}  count={int(stats['count'])} "
                f"mean={stats['mean']:,.2f} min={stats['min']:,.2f} "
                f"max={stats['max']:,.2f}"
                + (f" {quantiles}" if quantiles else ""))
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)
