"""Exporters for the observability layer.

Consumers and formats:

* :func:`chrome_trace` — the Chrome/Perfetto trace-event JSON format
  (load via ``chrome://tracing`` or https://ui.perfetto.dev).  Wall
  -clock compile spans render as a flame graph on ``pid 0`` with one
  ``tid`` per recording thread; serve-side request lifecycles render
  on ``pid 1`` against the *simulated* clock, one lane per concurrent
  request, causally linked by trace id.
* :func:`to_json` — a plain structured dump (spans + metrics +
  lifecycle events) for programmatic post-processing.
* :func:`events_jsonl` — the lifecycle event log as JSON Lines, one
  event per line (the machine-greppable audit stream).
* :func:`openmetrics` — OpenMetrics/Prometheus-style text exposition
  of the metric registry (plus optional rolling-window and SLO state),
  with :func:`parse_openmetrics` as its lossless inverse at sample
  granularity.
* :func:`summary` — a human-readable text report: the compile-phase
  span tree with wall times, then every counter/gauge/histogram.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping, Optional

from .events import LIFECYCLE, LifecycleLog
from .metrics import REGISTRY, MetricsRegistry
from .tracer import TRACER, Tracer

#: pid of the wall-clock (compile) lanes in the Chrome trace.
WALL_PID = 0
#: pid of the simulated-time (serve lifecycle) lanes.
SIM_PID = 1


def _span_dicts(tracer: Tracer) -> list[dict]:
    base = tracer.spans[0].start if tracer.spans else 0.0
    out = []
    for span in tracer.spans:
        out.append({
            "name": span.name,
            "start_s": span.start - base,
            "duration_s": span.duration,
            "depth": span.depth,
            "parent": span.parent,
            "thread": span.thread,
            "attrs": dict(span.attrs),
        })
    return out


# ----------------------------------------------------------------------
def _thread_tids(tracer: Tracer) -> dict[str, int]:
    """Stable thread-name → tid mapping, MainThread pinned to tid 0.

    Spans recorded from repro.parallel worker threads get their own
    rows instead of interleaving unreadably on one.
    """
    names: list[str] = []
    for span in tracer.spans:
        if span.thread not in names:
            names.append(span.thread)
    if "MainThread" in names:
        names.remove("MainThread")
    names.sort()
    names.insert(0, "MainThread")
    return {name: tid for tid, name in enumerate(names)}


def _lifecycle_lanes(log: LifecycleLog) -> list[dict]:
    """Chrome events for the request-lifecycle log on the simulated
    clock: one complete ("X") span per request covering its first to
    last event, with each typed event as an instant ("i") marker on
    the same lane.  Lanes (tids) are allocated greedily so requests
    that overlap in simulated time never share a row; events with no
    trace id (server-side, e.g. batch formation) land on a dedicated
    trailing ``server`` lane.
    """
    timed = [e for e in log.snapshot() if e.ts_ms is not None]
    if not timed:
        return []
    traces: dict[str, list] = {}
    anon = []
    for event in timed:
        if event.trace_id is not None:
            traces.setdefault(event.trace_id, []).append(event)
        else:
            anon.append(event)
    intervals = sorted(
        ((min(e.ts_ms for e in evs), max(e.ts_ms for e in evs),
          trace_id, evs) for trace_id, evs in traces.items()),
        key=lambda row: (row[0], row[1], row[2]))
    out: list[dict] = []
    lane_busy_until: list[float] = []
    for start, end, trace_id, evs in intervals:
        lane = next((i for i, busy in enumerate(lane_busy_until)
                     if busy <= start), None)
        if lane is None:
            lane = len(lane_busy_until)
            lane_busy_until.append(end)
        else:
            lane_busy_until[lane] = end
        out.append({
            "name": f"request {trace_id}",
            "cat": "serve",
            "ph": "X",
            "ts": start * 1e3,                # sim ms → trace µs
            "dur": max((end - start) * 1e3, 1.0),
            "pid": SIM_PID,
            "tid": lane,
            "args": {"trace_id": trace_id,
                     "events": [e.kind for e in evs]},
        })
        for event in evs:
            out.append({
                "name": event.kind,
                "cat": "serve",
                "ph": "i",
                "s": "t",
                "ts": event.ts_ms * 1e3,
                "pid": SIM_PID,
                "tid": lane,
                "args": dict(event.attrs,
                             trace_id=trace_id, seq=event.seq),
            })
    # Server-side (anonymous) events split into one lane per shard —
    # fleet events carry a ``shard`` attr — with a shared ``server``
    # lane for everything unsharded.
    shard_keys: list = []
    for event in anon:
        key = event.attrs.get("shard")
        if key not in shard_keys:
            shard_keys.append(key)
    shard_keys.sort(key=lambda k: (k is not None, k))
    server_lanes = {key: len(lane_busy_until) + i
                    for i, key in enumerate(shard_keys)}
    for event in anon:
        out.append({
            "name": event.kind,
            "cat": "serve",
            "ph": "i",
            "s": "t",
            "ts": event.ts_ms * 1e3,
            "pid": SIM_PID,
            "tid": server_lanes[event.attrs.get("shard")],
            "args": dict(event.attrs, seq=event.seq),
        })
    meta = [{
        "name": "process_name", "ph": "M", "pid": SIM_PID, "tid": 0,
        "args": {"name": "repro serve (simulated time)"},
    }]
    for lane in range(len(lane_busy_until)):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": SIM_PID,
            "tid": lane, "args": {"name": f"request lane {lane}"},
        })
    for key, lane in server_lanes.items():
        meta.append({
            "name": "thread_name", "ph": "M", "pid": SIM_PID,
            "tid": lane,
            "args": {"name": ("server" if key is None
                              else f"shard {key}")},
        })
    return meta + out


def chrome_trace(tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 lifecycle: Optional[LifecycleLog] = None) -> dict:
    """Build a ``chrome://tracing``-loadable trace-event document."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    lifecycle = lifecycle if lifecycle is not None else LIFECYCLE
    base = tracer.spans[0].start if tracer.spans else 0.0
    tids = _thread_tids(tracer)
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": WALL_PID,
        "tid": 0,
        "args": {"name": "repro compile (wall time)"},
    }]
    for name, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": WALL_PID,
            "tid": tid,
            "args": {"name": name},
        })
    for span in tracer.spans:
        if span.end is None:
            continue
        events.append({
            "name": span.name,
            "cat": "compile",
            "ph": "X",
            "ts": (span.start - base) * 1e6,    # microseconds
            "dur": span.duration * 1e6,
            "pid": WALL_PID,
            "tid": tids.get(span.thread, 0),
            "args": {str(k): v for k, v in span.attrs.items()},
        })
    events.extend(_lifecycle_lanes(lifecycle))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": registry.snapshot()},
    }


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None,
                       registry: Optional[MetricsRegistry] = None,
                       lifecycle: Optional[LifecycleLog] = None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, registry, lifecycle), handle,
                  indent=1)


# ----------------------------------------------------------------------
def to_json(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None,
            lifecycle: Optional[LifecycleLog] = None) -> dict:
    """Structured dump: spans, metric snapshot, lifecycle events."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    lifecycle = lifecycle if lifecycle is not None else LIFECYCLE
    return {
        "spans": _span_dicts(tracer),
        "metrics": registry.snapshot(),
        "events": lifecycle.to_payloads(),
    }


# ----------------------------------------------------------------------
def events_jsonl(lifecycle: Optional[LifecycleLog] = None) -> str:
    """The lifecycle log as JSON Lines (one event object per line)."""
    lifecycle = lifecycle if lifecycle is not None else LIFECYCLE
    return "\n".join(json.dumps(payload, sort_keys=True)
                     for payload in lifecycle.to_payloads())


def write_events_jsonl(path: str,
                       lifecycle: Optional[LifecycleLog] = None) -> None:
    text = events_jsonl(lifecycle)
    with open(path, "w") as handle:
        handle.write(text + ("\n" if text else ""))


# ----------------------------------------------------------------------
# OpenMetrics-style text exposition
# ----------------------------------------------------------------------
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")

_QUANTILE_KEYS = {"p50": "0.5", "p95": "0.95", "p99": "0.99"}


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`repro.obs.metrics.metric_key`'s flat form."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    labels: dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return match.group("name"), labels


def _render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(str(k))}="{v}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _om_number(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def openmetrics(registry: Optional[MetricsRegistry] = None,
                window_snapshot: Optional[Mapping[str, Any]] = None,
                slo_snapshot: Optional[Mapping[str, Any]] = None) -> str:
    """OpenMetrics-style text exposition of the telemetry state.

    All-time counters/gauges/histograms come from ``registry``;
    ``window_snapshot`` (a :meth:`WindowRegistry.snapshot
    <repro.obs.windows.WindowRegistry.snapshot>`) adds the rolling
    -window series under a ``window_ms`` label; ``slo_snapshot`` (a
    :meth:`SloMonitor.snapshot <repro.obs.slo.SloMonitor.snapshot>`)
    adds burn-rate/budget gauges.  Ends with the standard ``# EOF``.
    """
    registry = registry if registry is not None else REGISTRY
    snap = registry.snapshot()
    lines: list[str] = []

    def sample(name: str, labels: Mapping[str, Any],
               value: float) -> None:
        lines.append(f"{name}{_render_labels(labels)} "
                     f"{_om_number(value)}")

    def histogram_samples(base: str, labels: Mapping[str, Any],
                          stats: Mapping[str, Any]) -> None:
        sample(f"{base}_count", labels, stats.get("count", 0.0))
        sample(f"{base}_sum", labels, stats.get("sum", 0.0))
        if stats.get("empty") or not stats.get("count"):
            return
        for key, quantile in _QUANTILE_KEYS.items():
            if key in stats:
                sample(base, dict(labels, quantile=quantile),
                       stats[key])
        for key in ("min", "max", "mean"):
            if key in stats:
                sample(f"{base}_{key}", labels, stats[key])

    for key in sorted(snap["counters"]):
        name, labels = _split_key(key)
        base = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {base} counter")
        sample(f"{base}_total", labels, snap["counters"][key])
    for key in sorted(snap["gauges"]):
        name, labels = _split_key(key)
        base = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {base} gauge")
        sample(base, labels, snap["gauges"][key])
    for key in sorted(snap["histograms"]):
        name, labels = _split_key(key)
        base = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {base} summary")
        histogram_samples(base, labels, snap["histograms"][key])

    if window_snapshot:
        window_ms = window_snapshot.get("window_ms", 0.0)
        for key in sorted(window_snapshot.get("counters", {})):
            name, labels = _split_key(key)
            base = f"repro_window_{_sanitize(name)}"
            row = window_snapshot["counters"][key]
            labels = dict(labels, window_ms=f"{window_ms:g}")
            lines.append(f"# TYPE {base} gauge")
            sample(f"{base}_total", labels, row.get("total", 0.0))
            sample(f"{base}_rate_per_s", labels,
                   row.get("rate_per_s", 0.0))
        for key in sorted(window_snapshot.get("histograms", {})):
            name, labels = _split_key(key)
            base = f"repro_window_{_sanitize(name)}"
            labels = dict(labels, window_ms=f"{window_ms:g}")
            lines.append(f"# TYPE {base} summary")
            stats = dict(window_snapshot["histograms"][key])
            stats.pop("window_ms", None)
            histogram_samples(base, labels, stats)

    if slo_snapshot:
        lines.append("# TYPE repro_slo_healthy gauge")
        sample("repro_slo_healthy", {},
               1.0 if slo_snapshot.get("healthy") else 0.0)
        lines.append("# TYPE repro_slo_burn_rate gauge")
        lines.append("# TYPE repro_slo_budget_spent gauge")
        lines.append("# TYPE repro_slo_breaches gauge")
        for session in sorted(slo_snapshot.get("sessions", {})):
            for row in slo_snapshot["sessions"][session]:
                labels = {"session": session,
                          "objective": row["objective"]}
                burn = row.get("burn_rate") or 0.0
                if burn != float("inf"):
                    sample("repro_slo_burn_rate", labels, burn)
                sample("repro_slo_budget_spent", labels,
                       min(row.get("budget_spent", 0.0), 1e9))
                sample("repro_slo_breaches", labels,
                       row.get("breaches", 0))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, float]:
    """Inverse of :func:`openmetrics` at sample granularity: a map
    from ``name{labels}`` sample key to value.  Round-tripping the
    exposition through this parser is lossless."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


def summary(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None) -> str:
    """Human-readable report: span tree, counters, gauges, histograms."""
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []

    completed = tracer.completed()
    if completed:
        lines.append("== phases ==")
        width = max(len("  " * s.depth + s.name) for s in completed)
        for span in completed:
            label = "  " * span.depth + span.name
            attrs = ""
            if span.attrs:
                attrs = "  (" + ", ".join(
                    f"{k}={v}" for k, v in span.attrs.items()) + ")"
            lines.append(f"{label:<{width}}  "
                         f"{span.duration * 1e3:>10.2f} ms{attrs}")

    snap = registry.snapshot()
    if snap["counters"]:
        lines.append("")
        lines.append("== counters ==")
        width = max(len(k) for k in snap["counters"])
        for key in sorted(snap["counters"]):
            lines.append(f"{key:<{width}}  "
                         f"{_format_value(snap['counters'][key]):>16}")
    if snap["gauges"]:
        lines.append("")
        lines.append("== gauges ==")
        width = max(len(k) for k in snap["gauges"])
        for key in sorted(snap["gauges"]):
            lines.append(f"{key:<{width}}  "
                         f"{_format_value(snap['gauges'][key]):>16}")
    if snap["histograms"]:
        lines.append("")
        lines.append("== histograms ==")
        for key in sorted(snap["histograms"]):
            stats = snap["histograms"][key]
            if stats.get("empty") or not stats.get("count"):
                lines.append(f"{key}  count=0 (empty)")
                continue
            quantiles = " ".join(
                f"{name}={stats[name]:,.2f}"
                for name in ("p50", "p95", "p99") if name in stats)
            lines.append(
                f"{key}  count={int(stats['count'])} "
                f"mean={stats['mean']:,.2f} min={stats['min']:,.2f} "
                f"max={stats['max']:,.2f}"
                + (f" {quantiles}" if quantiles else ""))
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)
