"""Deterministic fault injection for the whole toolchain.

The compile pipeline (profiling → ILP → buffers → codegen), the
compile cache, the worker pool, the execution backends and the serving
runtime all have failure modes that are rare in tests and common in
production: a solver that stalls, a cache entry that a crashed writer
left torn, a worker thread that dies, a transient per-firing soft
error, a flaky SM.  This module injects exactly those faults — on
purpose, deterministically — so the resilience machinery (degradation
ladder, bounded retries, circuit breaker) is exercised by the chaos
suite instead of trusted on faith.

Design rules:

* **Zero cost when disabled.**  Every instrumented site guards with
  ``faults.is_active()`` — one module-global check, exactly like
  :mod:`repro.obs`.  No spec parsed, no hash computed, no counter
  touched.
* **Deterministic, order-free decisions.**  Whether a given site
  injects is a pure function of ``(seed, site, key)``: the decision is
  ``blake2b(seed:site:key) / 2^64 < rate``.  No shared RNG stream
  means no dependence on thread interleaving — a parallel compile
  injects the *same* faults as a serial one, and identical
  ``--fault-spec`` strings reproduce identical failures.
* **Typed faults only.**  Injections raise :class:`~repro.errors
  .TransientFault` subclasses (or ``OSError`` for cache I/O, matching
  what the real world throws there); nothing is ever silently
  swallowed or silently dropped.

Activation: pass a spec string to :func:`configure`, or set
``REPRO_FAULTS`` (the CLI's ``--fault-spec`` flag does the former).
The spec is a comma-separated list of ``key=value`` pairs::

    seed=42,solver.timeout=0.5,cache.corrupt=1.0,worker.crash=0.25

Rate keys (0..1 probability per decision) are the injection sites
listed in :data:`SITES`; ``seed`` picks the deterministic universe;
``<site>.persist=N`` makes a hit fault the first N attempts at that
key (so ``persist`` at or above the retry budget turns a transient
fault into a hard one); ``filter.retries`` / ``worker.retries`` /
``cache.retries`` / ``gpu.retries`` and ``backoff_ms`` tune the
bounded-retry machinery.  See docs/robustness.md.

Injection counters accumulate in-process always (they are how the
chaos suite asserts an injection actually happened) and are mirrored
into :mod:`repro.obs` as ``faults.injected{site=...}`` /
``faults.retries{site=...}`` whenever the observability layer is on.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, TypeVar, Union

from . import obs
from .errors import (
    FaultSpecError,
    TransientFault,
    TransientFilterFault,
    WorkerCrash,
    WorkerHang,
)

T = TypeVar("T")

#: Environment variable consulted when no explicit spec is configured.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The known injection sites (rate keys of the spec).
SITES = (
    "solver.timeout",      # an ILP attempt is forced to time out
    "solver.infeasible",   # an ILP attempt is forced infeasible
    "cache.corrupt",       # a cache read observes a corrupted entry
    "cache.io",            # a cache read/write raises OSError
    "worker.crash",        # a pooled task dies (WorkerCrash)
    "worker.hang",         # a pooled task hangs (WorkerHang)
    "filter.transient",    # one firing faults (TransientFilterFault)
    "gpu.sm_error",        # one SM errors during a simulated kernel
    "shard.crash",         # a fleet shard dies (sessions re-route)
    "journal.torn_write",  # a journal append is torn mid-record
    "snapshot.corrupt",    # a checkpoint read observes corruption
    "process.crash",       # the whole process dies at a crashpoint
)

#: Non-rate knobs the spec accepts, with defaults.
PARAM_DEFAULTS: dict[str, float] = {
    "filter.retries": 3.0,   # re-fires after a transient filter fault
    "worker.retries": 2.0,   # re-runs of a crashed/hung pooled task
    "cache.retries": 2.0,    # re-reads/re-writes after a cache I/O error
    "gpu.retries": 2.0,      # SM relaunches after a simulated SM error
    "backoff_ms": 1.0,       # base retry backoff (doubles per attempt)
    "hang_ms": 1.0,          # how long an injected hang blocks
}

_LOCK = threading.Lock()


@dataclass
class FaultSpec:
    """A parsed, immutable-in-spirit fault universe."""

    seed: int = 0
    rates: dict[str, float] = field(default_factory=dict)
    params: dict[str, float] = field(default_factory=dict)
    #: Injections actually performed, per site (process totals).
    counters: dict[str, int] = field(default_factory=dict)
    #: Retries consumed recovering from injected faults, per site.
    retry_counters: dict[str, int] = field(default_factory=dict)

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    def param(self, name: str) -> float:
        value = self.params.get(name)
        if value is None:
            value = PARAM_DEFAULTS[name]
        return value

    def persist(self, site: str) -> int:
        """How many attempts at one key a hit keeps faulting (>= 1)."""
        return max(1, int(self.params.get(f"{site}.persist", 1)))

    def describe(self) -> str:
        rates = ",".join(f"{k}={self.rates[k]:g}"
                         for k in sorted(self.rates))
        return f"seed={self.seed},{rates}" if rates else f"seed={self.seed}"


def parse_spec(text: Union[str, "FaultSpec", None]) -> Optional[FaultSpec]:
    """Parse a ``--fault-spec`` string; None/"" disables injection."""
    if text is None or isinstance(text, FaultSpec):
        return text
    text = text.strip()
    if not text or text.lower() in ("off", "none", "0"):
        return None
    spec = FaultSpec()
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise FaultSpecError(
                f"fault spec entry {chunk!r} is not key=value "
                f"(full spec: {text!r})")
        key, _, raw = chunk.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "seed":
            try:
                spec.seed = int(raw)
            except ValueError:
                raise FaultSpecError(
                    f"fault seed must be an integer, got {raw!r}") \
                    from None
            continue
        try:
            value = float(raw)
        except ValueError:
            raise FaultSpecError(
                f"fault spec value for {key!r} must be numeric, got "
                f"{raw!r}") from None
        if key in SITES:
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"fault rate {key}={value:g} outside [0, 1]")
            spec.rates[key] = value
        elif key in PARAM_DEFAULTS or any(
                key == f"{site}.persist" for site in SITES):
            if value < 0:
                raise FaultSpecError(
                    f"fault knob {key}={value:g} must be >= 0")
            spec.params[key] = value
        else:
            known = ", ".join(SITES)
            raise FaultSpecError(
                f"unknown fault spec key {key!r}; rate sites: {known}; "
                f"knobs: {', '.join(sorted(PARAM_DEFAULTS))}, "
                f"<site>.persist")
    return spec


# ----------------------------------------------------------------------
# the active spec
# ----------------------------------------------------------------------
_UNSET = object()
_active: object = _UNSET   # _UNSET -> consult env on first use


def configure(spec: Union[str, FaultSpec, None]) -> Optional[FaultSpec]:
    """Install ``spec`` (string or parsed) as the active fault universe.

    ``None`` (or an empty/"off" string) disables injection.  Returns
    the installed spec.
    """
    global _active
    parsed = parse_spec(spec)
    _active = parsed
    return parsed


def reset() -> None:
    """Forget any configured spec; the next check re-reads the env."""
    global _active
    _active = _UNSET


def active() -> Optional[FaultSpec]:
    """The active spec (resolving ``REPRO_FAULTS`` on first use)."""
    global _active
    if _active is _UNSET:
        _active = parse_spec(os.environ.get(FAULTS_ENV_VAR))
    return _active  # type: ignore[return-value]


def is_active() -> bool:
    spec = active()
    return spec is not None and bool(spec.rates)


# ----------------------------------------------------------------------
# deterministic decisions + counters
# ----------------------------------------------------------------------
def _roll(seed: int, site: str, key: str) -> float:
    """Uniform [0, 1) value, a pure function of (seed, site, key)."""
    digest = hashlib.blake2b(f"{seed}:{site}:{key}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def should(site: str, key: str, attempt: int = 0) -> bool:
    """Decide (deterministically) whether ``site`` faults at ``key``.

    ``attempt`` is the caller's retry counter: a hit faults attempts
    ``0 .. persist-1`` and then stops, so bounded retry recovers unless
    the spec's ``<site>.persist`` outlasts the retry budget.
    """
    spec = active()
    if spec is None:
        return False
    rate = spec.rate(site)
    if rate <= 0.0 or attempt >= spec.persist(site):
        return False
    if rate < 1.0 and _roll(spec.seed, site, key) >= rate:
        return False
    _count(spec, site)
    return True


def _count(spec: FaultSpec, site: str) -> None:
    with _LOCK:
        spec.counters[site] = spec.counters.get(site, 0) + 1
    if obs.is_enabled():
        obs.counter("faults.injected", site=site).add(1)
        # Causal attribution: the ambient trace id (set by the serving
        # loop around batch execution) links the injection to the
        # request batch it hit.
        obs.emit("fault_injected", site=site)


def count_retry(site: str) -> None:
    """Record one retry spent recovering from an injected fault."""
    spec = active()
    if spec is None:
        return
    with _LOCK:
        spec.retry_counters[site] = spec.retry_counters.get(site, 0) + 1
    if obs.is_enabled():
        obs.counter("faults.retries", site=site).add(1)
        obs.emit("retry", site=site)


def counters() -> dict[str, int]:
    """Injection totals per site (empty when no spec is active)."""
    spec = active()
    if spec is None:
        return {}
    with _LOCK:
        return dict(spec.counters)


def retry_counters() -> dict[str, int]:
    spec = active()
    if spec is None:
        return {}
    with _LOCK:
        return dict(spec.retry_counters)


def flush_counters() -> None:
    """Publish current totals into the obs registry as gauges.

    Injection/retry counters are mirrored incrementally while obs is
    enabled; this additionally snapshots the totals (useful when obs
    was switched on after injection started).
    """
    spec = active()
    if spec is None or not obs.is_enabled():
        return
    with _LOCK:
        for site, value in spec.counters.items():
            obs.gauge("faults.injected_total", site=site).set(value)
        for site, value in spec.retry_counters.items():
            obs.gauge("faults.retries_total", site=site).set(value)


# ----------------------------------------------------------------------
# site-specific injection helpers
# ----------------------------------------------------------------------
def maybe_io_error(site: str, key: str, attempt: int = 0) -> None:
    """Raise ``OSError`` when the cache-I/O site fires (the production
    handling path for real disk trouble is exactly the injected one)."""
    if should(site, key, attempt):
        raise OSError(f"injected {site} fault at {key!r} "
                      f"(attempt {attempt})")


def maybe_worker_fault(label: str, index: int, attempt: int = 0) -> None:
    """Raise a typed worker fault when either worker site fires."""
    key = f"{label}:{index}"
    if should("worker.crash", key, attempt):
        raise WorkerCrash(
            f"injected worker crash in task {label}[{index}] "
            f"(attempt {attempt})")
    if should("worker.hang", key, attempt):
        spec = active()
        hang_ms = spec.param("hang_ms") if spec is not None else 0.0
        if hang_ms > 0:
            time.sleep(hang_ms / 1e3)
        raise WorkerHang(
            f"injected worker hang in task {label}[{index}] "
            f"(attempt {attempt}; blocked {hang_ms:g} ms before the "
            f"hang detector fired)")


def with_filter_retries(name: str, index: int,
                        fire: Callable[[], T]) -> T:
    """Run one firing under transient-fault injection + bounded retry.

    A firing is side-effect-free until its outputs commit (the caller
    pops/pushes only after ``fire`` returns), so re-firing after a
    :class:`TransientFilterFault` is safe.  The retry budget comes from
    the spec's ``filter.retries``; a fault persisting past it escapes
    typed.
    """
    spec = active()
    retries = int(spec.param("filter.retries")) if spec is not None else 0
    key = f"{name}:{index}"
    attempt = 0
    while True:
        try:
            if should("filter.transient", key, attempt):
                raise TransientFilterFault(
                    f"injected transient fault in filter {name!r} "
                    f"firing {index} (attempt {attempt})")
            return fire()
        except TransientFilterFault:
            if attempt >= retries:
                raise
            attempt += 1
            count_retry("filter.transient")
            backoff_sleep(attempt)


def backoff_sleep(attempt: int) -> None:
    """Deterministic exponential backoff: ``backoff_ms * 2^(n-1)``.

    No jitter — jitter would need a shared RNG stream and break the
    order-free determinism guarantee; the backoff base is tiny and
    configurable instead.
    """
    spec = active()
    base_ms = spec.param("backoff_ms") if spec is not None else 1.0
    if base_ms <= 0:
        return
    time.sleep(base_ms * (2 ** max(0, attempt - 1)) / 1e3)


def with_retries(fn: Callable[[], T], *, site: str, key: str,
                 retries: int,
                 retry_on: tuple = (TransientFault,)) -> T:
    """Run ``fn``, retrying typed-transient failures with backoff.

    Only exceptions in ``retry_on`` are retried (arbitrary failures
    are not assumed idempotent); the last failure propagates typed
    once ``retries`` is exhausted.  ``site``/``key`` feed the injection
    decision for the attempt (via the helpers ``fn`` itself calls) and
    the retry counters.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= retries:
                raise
            attempt += 1
            count_retry(site)
            backoff_sleep(attempt)


__all__ = [
    "FAULTS_ENV_VAR",
    "FaultSpec",
    "PARAM_DEFAULTS",
    "SITES",
    "active",
    "backoff_sleep",
    "configure",
    "count_retry",
    "counters",
    "flush_counters",
    "is_active",
    "maybe_io_error",
    "maybe_worker_fault",
    "parse_spec",
    "reset",
    "retry_counters",
    "should",
    "with_filter_retries",
    "with_retries",
]
