"""The flat stream graph: nodes connected by FIFO channels.

This is the representation the scheduler works on (the paper's "set of
filters connected by FIFO channels", Section I).  Each :class:`Channel`
carries the SDF production rate ``O_uv``, consumption rate ``I_uv`` and
the number of initial tokens ``m_uv`` — exactly the quantities used by
the ILP formulation in Section III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..errors import GraphError
from .nodes import Filter, Joiner, Node, Splitter


@dataclass
class Channel:
    """A FIFO channel from ``src`` output port to ``dst`` input port."""

    src: Node
    src_port: int
    dst: Node
    dst_port: int
    initial_tokens: list = field(default_factory=list)

    @property
    def production_rate(self) -> int:
        """``O_uv``: tokens produced per firing of ``src``."""
        return self.src.push_rate(self.src_port)

    @property
    def consumption_rate(self) -> int:
        """``I_uv``: tokens consumed per firing of ``dst``."""
        return self.dst.pop_rate(self.dst_port)

    @property
    def peek_depth(self) -> int:
        """Tokens ``dst`` must see on this channel before it may fire."""
        return self.dst.peek_depth(self.dst_port)

    @property
    def num_initial_tokens(self) -> int:
        """``m_uv``: tokens present on the channel before execution."""
        return len(self.initial_tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Channel {self.src.name}.{self.src_port} -> "
                f"{self.dst.name}.{self.dst_port}>")


class StreamGraph:
    """A flattened stream graph.

    The graph owns its nodes and channels.  Use :meth:`add_node` /
    :meth:`connect` to build one directly, or build hierarchically with
    :mod:`repro.graph.structures` and flatten.
    """

    def __init__(self, name: str = "stream") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self.channels: list[Channel] = []
        self._out: dict[int, dict[int, Channel]] = {}
        self._in: dict[int, dict[int, Channel]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.uid in self._out:
            raise GraphError(f"node {node.name} already in graph")
        self.nodes.append(node)
        self._out[node.uid] = {}
        self._in[node.uid] = {}
        return node

    def connect(self, src: Node, dst: Node, *, src_port: int = 0,
                dst_port: int = 0,
                initial_tokens: Optional[Sequence] = None) -> Channel:
        if src.uid not in self._out:
            raise GraphError(f"source node {src.name} not in graph")
        if dst.uid not in self._in:
            raise GraphError(f"destination node {dst.name} not in graph")
        if not 0 <= src_port < src.num_outputs:
            raise GraphError(
                f"{src.name} has no output port {src_port}")
        if not 0 <= dst_port < dst.num_inputs:
            raise GraphError(
                f"{dst.name} has no input port {dst_port}")
        if src_port in self._out[src.uid]:
            raise GraphError(
                f"{src.name} output port {src_port} already connected")
        if dst_port in self._in[dst.uid]:
            raise GraphError(
                f"{dst.name} input port {dst_port} already connected")
        channel = Channel(src, src_port, dst, dst_port,
                          list(initial_tokens or []))
        self.channels.append(channel)
        self._out[src.uid][src_port] = channel
        self._in[dst.uid][dst_port] = channel
        return channel

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def output_channel(self, node: Node, port: int = 0) -> Channel:
        try:
            return self._out[node.uid][port]
        except KeyError:
            raise GraphError(
                f"{node.name} output port {port} is not connected") from None

    def input_channel(self, node: Node, port: int = 0) -> Channel:
        try:
            return self._in[node.uid][port]
        except KeyError:
            raise GraphError(
                f"{node.name} input port {port} is not connected") from None

    def output_channels(self, node: Node) -> list[Channel]:
        return [self._out[node.uid][p] for p in sorted(self._out[node.uid])]

    def input_channels(self, node: Node) -> list[Channel]:
        return [self._in[node.uid][p] for p in sorted(self._in[node.uid])]

    def successors(self, node: Node) -> list[Node]:
        return [ch.dst for ch in self.output_channels(node)]

    def predecessors(self, node: Node) -> list[Node]:
        return [ch.src for ch in self.input_channels(node)]

    @property
    def filters(self) -> list[Filter]:
        return [n for n in self.nodes if isinstance(n, Filter)]

    @property
    def splitters(self) -> list[Splitter]:
        return [n for n in self.nodes if isinstance(n, Splitter)]

    @property
    def joiners(self) -> list[Joiner]:
        return [n for n in self.nodes if isinstance(n, Joiner)]

    @property
    def sources(self) -> list[Node]:
        return [n for n in self.nodes if n.num_inputs == 0]

    @property
    def sinks(self) -> list[Node]:
        return [n for n in self.nodes if n.num_outputs == 0]

    @property
    def num_peeking_filters(self) -> int:
        """Filters whose peek depth exceeds their pop rate (Table I)."""
        return sum(1 for f in self.filters if f.peek > f.pop)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # validation & traversal
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that every port of every node is connected exactly once."""
        if not self.nodes:
            raise GraphError("graph has no nodes")
        for node in self.nodes:
            for port in range(node.num_inputs):
                if port not in self._in[node.uid]:
                    raise GraphError(
                        f"{node.name}: input port {port} unconnected")
            for port in range(node.num_outputs):
                if port not in self._out[node.uid]:
                    raise GraphError(
                        f"{node.name}: output port {port} unconnected")
        if not self.sources:
            raise GraphError("graph has no source node")
        if not self.sinks:
            raise GraphError("graph has no sink node")
        self._check_connected()

    def _check_connected(self) -> None:
        seen: set[int] = set()
        stack = [self.nodes[0]]
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            for other in self.successors(node) + self.predecessors(node):
                if other.uid not in seen:
                    stack.append(other)
        if len(seen) != len(self.nodes):
            missing = [n.name for n in self.nodes if n.uid not in seen]
            raise GraphError(
                f"graph is not connected; unreachable nodes: {missing}")

    def topological_order(self) -> list[Node]:
        """Topological order ignoring channels with initial tokens.

        Channels carrying initial tokens (feedback edges) do not impose
        an ordering for the first firing, mirroring how SDF scheduling
        treats delays.  Raises :class:`GraphError` on a zero-delay cycle,
        which would deadlock.
        """
        indegree: dict[int, int] = {n.uid: 0 for n in self.nodes}
        for ch in self.channels:
            if ch.num_initial_tokens == 0:
                indegree[ch.dst.uid] += 1
        ready = [n for n in self.nodes if indegree[n.uid] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for ch in self.output_channels(node):
                if ch.num_initial_tokens:
                    continue
                indegree[ch.dst.uid] -= 1
                if indegree[ch.dst.uid] == 0:
                    ready.append(ch.dst)
        if len(order) != len(self.nodes):
            raise GraphError(
                "graph has a zero-delay cycle (deadlock): every feedback "
                "loop needs initial tokens on its back edge")
        return order

    def has_feedback(self) -> bool:
        """True when the graph contains a cycle (via initial-token edges)."""
        try:
            self._acyclic_check()
            return False
        except GraphError:
            return True

    def _acyclic_check(self) -> None:
        indegree: dict[int, int] = {n.uid: 0 for n in self.nodes}
        for ch in self.channels:
            indegree[ch.dst.uid] += 1
        ready = [n for n in self.nodes if indegree[n.uid] == 0]
        count = 0
        while ready:
            node = ready.pop()
            count += 1
            for ch in self.output_channels(node):
                indegree[ch.dst.uid] -= 1
                if indegree[ch.dst.uid] == 0:
                    ready.append(ch.dst)
        if count != len(self.nodes):
            raise GraphError("graph is cyclic")

    def stateful_filters(self) -> list[Filter]:
        return [f for f in self.filters if f.is_stateful]

    def summary(self) -> str:
        """Human-readable one-paragraph description (README/debugging)."""
        return (f"StreamGraph '{self.name}': {len(self.nodes)} nodes "
                f"({len(self.filters)} filters, {len(self.splitters)} "
                f"splitters, {len(self.joiners)} joiners), "
                f"{len(self.channels)} channels, "
                f"{self.num_peeking_filters} peeking filters")
