"""Stream-graph intermediate representation (StreamIt-style).

Public surface:

* node types: :class:`Filter`, :class:`Splitter`, :class:`Joiner`,
  :class:`WorkEstimate`
* hierarchical structures: :class:`Pipeline`, :class:`SplitJoin`,
  :class:`FeedbackLoop`, lowered by :func:`flatten`
* the flat :class:`StreamGraph` with :class:`Channel` edges
* steady-state rate solving: :func:`solve_rates`, :class:`SteadyState`
"""

from .analysis import (
    WorkProfile,
    critical_path,
    load_balance_bound,
    pipeline_depth,
    summarize,
    work_profile,
)
from .dot import schedule_to_dot, to_dot
from .graph import Channel, StreamGraph
from .flatten import flatten
from .init_schedule import InitSchedule, compute_init_schedule, requires_init
from .nodes import (
    Filter,
    Joiner,
    Node,
    SplitKind,
    Splitter,
    WorkEstimate,
    counter_source,
    default_estimate,
    identity_filter,
    indexed_source,
    source_from_sequence,
)
from .rates import SteadyState, check_balance, is_primitive, solve_rates
from .structures import FeedbackLoop, Pipeline, SplitJoin

__all__ = [
    "Channel",
    "WorkProfile",
    "critical_path",
    "load_balance_bound",
    "pipeline_depth",
    "schedule_to_dot",
    "summarize",
    "to_dot",
    "work_profile",
    "FeedbackLoop",
    "Filter",
    "InitSchedule",
    "Joiner",
    "Node",
    "Pipeline",
    "SplitJoin",
    "SplitKind",
    "Splitter",
    "SteadyState",
    "StreamGraph",
    "WorkEstimate",
    "check_balance",
    "compute_init_schedule",
    "counter_source",
    "default_estimate",
    "flatten",
    "identity_filter",
    "indexed_source",
    "is_primitive",
    "requires_init",
    "solve_rates",
    "source_from_sequence",
]
