"""Initialization schedules for peeking filters.

A filter with ``peek > pop`` inspects tokens it does not consume, so its
input channel must permanently hold at least ``peek - pop`` *history*
tokens.  StreamIt handles this with an initialization schedule (Karczmarek
et al., "Phased Scheduling of Stream Programs"): before the first
steady-state iteration, upstream nodes fire a few extra times to prime
the channels.  The paper inherits this mechanism from the StreamIt
compiler; in the ILP formulation the primed occupancy shows up as the
initial-token count ``m_uv``.

This module computes the minimal init firing counts by a demand-driven
fixpoint, and the resulting post-init channel occupancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Mapping

from ..errors import GraphError
from .graph import Channel, StreamGraph
from .nodes import Node


@dataclass(frozen=True)
class InitSchedule:
    """Init firing counts and the channel state they establish.

    ``firings[uid]`` is how many times each node fires during
    initialization.  ``post_init_tokens[channel_index]`` is the token
    count on each channel once initialization has completed — the
    ``m_uv`` the software-pipelining ILP sees.
    """

    graph: StreamGraph
    firings: Mapping[int, int]
    post_init_tokens: tuple[int, ...]

    def __getitem__(self, node: Node) -> int:
        return self.firings[node.uid]

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())

    def tokens_after_init(self, channel: Channel) -> int:
        index = self.graph.channels.index(channel)
        return self.post_init_tokens[index]


def compute_init_schedule(graph: StreamGraph) -> InitSchedule:
    """Compute minimal init firing counts for ``graph``.

    Demand propagates from consumers to producers: every node ``v`` that
    must fire ``init_v`` times during initialization, or that peeks
    deeper than it pops, requires each input channel ``(u, v)`` to carry
    ``init_v * pop + (peek - pop)`` tokens, which in turn forces ``u``
    to fire.  Iterates to a fixpoint (cycles are broken by the initial
    tokens StreamIt's ``enqueue`` places on feedback channels).
    """
    graph.validate()
    init: dict[int, int] = {node.uid: 0 for node in graph.nodes}
    # Generous bound: demands grow monotonically and each round increases
    # some count, so a diverging loop means an underprimed cycle.
    max_rounds = 10 * len(graph.nodes) + 100
    for _ in range(max_rounds):
        changed = False
        for channel in graph.channels:
            consumer = channel.dst
            producer = channel.src
            pop = channel.consumption_rate
            push = channel.production_rate
            history = max(0, channel.peek_depth - pop)
            demand = init[consumer.uid] * pop + history
            available = channel.num_initial_tokens
            deficit = demand - available
            if deficit <= 0:
                continue
            needed = ceil(deficit / push)
            if needed > init[producer.uid]:
                init[producer.uid] = needed
                changed = True
        if not changed:
            post = _post_init_occupancy(graph, init)
            return InitSchedule(graph, init, post)
    raise GraphError(
        "initialization schedule did not converge; a feedback loop needs "
        "more initial tokens to cover downstream peeking")


def _post_init_occupancy(graph: StreamGraph,
                         init: Mapping[int, int]) -> tuple[int, ...]:
    occupancy = []
    for channel in graph.channels:
        tokens = (channel.num_initial_tokens
                  + init[channel.src.uid] * channel.production_rate
                  - init[channel.dst.uid] * channel.consumption_rate)
        if tokens < 0:
            raise GraphError(
                f"init schedule underflows channel "
                f"{channel.src.name}->{channel.dst.name}")
        occupancy.append(tokens)
    return tuple(occupancy)


def requires_init(graph: StreamGraph) -> bool:
    """True when any filter peeks beyond its pop rate."""
    return any(max(0, ch.peek_depth - ch.consumption_rate) > 0
               for ch in graph.channels)
