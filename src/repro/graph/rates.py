"""Steady-state rate solving for multi-rate stream graphs.

Solves the balance equations ``k_u * O_uv = k_v * I_uv`` for every
channel ``(u, v)`` (Lee & Messerschmitt's SDF repetition vector, which
the paper calls "the steady state rate equations", Section II-B).  The
solution is the *primitive steady-state schedule*: the componentwise
smallest positive integer vector of firing counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..errors import RateError
from .graph import StreamGraph
from .nodes import Node


@dataclass(frozen=True)
class SteadyState:
    """The repetition vector of a stream graph.

    ``firings[node.uid]`` is ``k_v`` — how many times node ``v`` fires in
    one steady-state iteration of the primitive schedule.
    """

    graph: StreamGraph
    firings: Mapping[int, int]

    def __getitem__(self, node: Node) -> int:
        return self.firings[node.uid]

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())

    def channel_tokens(self, channel) -> int:
        """Tokens crossing ``channel`` in one steady-state iteration.

        Balance guarantees production equals consumption, so this is
        well defined: ``k_u * O_uv == k_v * I_uv``.
        """
        return self[channel.src] * channel.production_rate

    def scaled(self, factor: int) -> "SteadyState":
        """The repetition vector for ``factor`` steady-state iterations."""
        if factor < 1:
            raise RateError(f"scale factor must be >= 1, got {factor}")
        return SteadyState(
            self.graph,
            {uid: k * factor for uid, k in self.firings.items()})


def solve_rates(graph: StreamGraph) -> SteadyState:
    """Compute the primitive repetition vector of ``graph``.

    Raises :class:`RateError` if the balance equations are inconsistent
    (a "sample-rate mismatch": the graph cannot run forever in bounded
    memory) or if any node would have a zero rate.
    """
    graph.validate()
    rates: dict[int, Fraction] = {}
    start = graph.nodes[0]
    rates[start.uid] = Fraction(1)
    stack = [start]
    while stack:
        node = stack.pop()
        rate = rates[node.uid]
        for ch in graph.output_channels(node):
            produced = ch.production_rate
            consumed = ch.consumption_rate
            if produced == 0 or consumed == 0:
                raise RateError(
                    f"channel {ch.src.name}->{ch.dst.name} has a zero "
                    f"rate (O={produced}, I={consumed}); dead channels "
                    f"are not schedulable")
            implied = rate * produced / consumed
            _merge(rates, stack, ch.dst, implied)
        for ch in graph.input_channels(node):
            produced = ch.production_rate
            consumed = ch.consumption_rate
            if produced == 0 or consumed == 0:
                raise RateError(
                    f"channel {ch.src.name}->{ch.dst.name} has a zero "
                    f"rate (O={produced}, I={consumed}); dead channels "
                    f"are not schedulable")
            implied = rate * consumed / produced
            _merge(rates, stack, ch.src, implied)

    # graph.validate() guarantees connectivity, so every node got a rate.
    scale = math.lcm(*(r.denominator for r in rates.values()))
    integral = {uid: int(r * scale) for uid, r in rates.items()}
    shrink = math.gcd(*integral.values())
    firings = {uid: k // shrink for uid, k in integral.items()}
    return SteadyState(graph, firings)


def _merge(rates: dict[int, Fraction], stack: list, node: Node,
           implied: Fraction) -> None:
    existing = rates.get(node.uid)
    if existing is None:
        rates[node.uid] = implied
        stack.append(node)
    elif existing != implied:
        raise RateError(
            f"inconsistent steady-state rates at {node.name}: "
            f"{existing} vs {implied} — the balance equations have no "
            f"solution (sample-rate mismatch)")


def is_primitive(steady: SteadyState) -> bool:
    """True when the firing counts have no common factor."""
    return math.gcd(*steady.firings.values()) == 1


def check_balance(steady: SteadyState) -> None:
    """Assert production == consumption on every channel (debug aid)."""
    for ch in steady.graph.channels:
        produced = steady[ch.src] * ch.production_rate
        consumed = steady[ch.dst] * ch.consumption_rate
        if produced != consumed:
            raise RateError(
                f"unbalanced channel {ch.src.name}->{ch.dst.name}: "
                f"{produced} produced vs {consumed} consumed per iteration")
