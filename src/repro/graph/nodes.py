"""Flat stream-graph node types: filters, splitters and joiners.

These are the nodes of a *flattened* StreamIt graph (the paper's Section
II-B).  Hierarchical composition (pipelines, split-joins, feedback loops)
lives in :mod:`repro.graph.structures` and is lowered to these nodes by
:mod:`repro.graph.flatten`.

A :class:`Filter` carries:

* its SDF rates (``pop``, ``push`` and ``peek`` depth, with
  ``peek >= pop``),
* an optional ``work`` function used by the functional interpreters, and
* a :class:`WorkEstimate` consumed by the GPU timing simulator and the
  profiling phase (Section IV-A of the paper).

Splitters and joiners are the StreamIt round-robin / duplicate data
distributors.  They are pure data movement: their work estimate has no
compute component, which is what makes them "bandwidth hungry by nature"
(Section V-B of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Optional, Sequence

from ..errors import GraphError

# A work function maps a read-only input window (length ``peek``) to the
# list of ``push`` output tokens.  Sources receive an empty window.
WorkFunction = Callable[[Sequence], list]

_node_counter = itertools.count()


def _next_node_id() -> int:
    return next(_node_counter)


@dataclass(frozen=True)
class WorkEstimate:
    """Static cost estimate of one firing of a node.

    The GPU simulator and the CPU baseline cost model consume these
    numbers.  ``compute_ops`` counts arithmetic operations; ``loads`` and
    ``stores`` count device-memory token accesses (they default to the
    node's pop/push rates when built through :func:`default_estimate`).
    ``fresh_loads`` is how many of the loads are *new* tokens (the pop
    rate): a peeking filter re-reads ``loads - fresh_loads`` tokens that
    consecutive firings share, which is exactly the reuse shared-memory
    staging exploits (paper Section V-B).  ``registers`` estimates the
    per-thread register requirement of the generated CUDA kernel, which
    drives occupancy in the profiling phase.
    """

    compute_ops: int
    loads: int
    stores: int
    registers: int = 10
    fresh_loads: int = -1  # -1 means "equal to loads" (no peeking)

    def __post_init__(self) -> None:
        if self.compute_ops < 0 or self.loads < 0 or self.stores < 0:
            raise GraphError("work estimate components must be non-negative")
        if self.registers < 1:
            raise GraphError("a thread always needs at least one register")
        if self.fresh_loads == -1:
            object.__setattr__(self, "fresh_loads", self.loads)
        if not 0 <= self.fresh_loads <= self.loads:
            raise GraphError("fresh_loads must be within [0, loads]")

    def scaled(self, factor: int) -> "WorkEstimate":
        """Return the estimate for ``factor`` back-to-back firings."""
        if factor < 1:
            raise GraphError(f"scale factor must be >= 1, got {factor}")
        return replace(
            self,
            compute_ops=self.compute_ops * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            fresh_loads=self.fresh_loads * factor,
        )

    @property
    def total_memory_ops(self) -> int:
        return self.loads + self.stores

    @property
    def window_overlap(self) -> int:
        """Tokens shared between consecutive firings (peek - pop)."""
        return self.loads - self.fresh_loads


def default_estimate(pop: int, push: int, peek: int,
                     compute_ops: Optional[int] = None,
                     registers: Optional[int] = None) -> WorkEstimate:
    """Build a plausible work estimate from a filter's rates.

    When no explicit compute cost is given we assume a couple of
    arithmetic operations per token moved, which matches the granularity
    of typical StreamIt filters (FIR taps, butterflies, compare-exchange
    stages).
    """
    if compute_ops is None:
        compute_ops = 2 * (peek + push)
    if registers is None:
        # Registers grow slowly with the working set: index arithmetic,
        # a few accumulators, plus one live value per few window slots.
        registers = min(64, 8 + peek // 4 + push // 8 + compute_ops // 32)
    return WorkEstimate(compute_ops=compute_ops, loads=peek, stores=push,
                        registers=max(1, registers), fresh_loads=pop)


class Node:
    """Base class for flat stream-graph nodes."""

    name: str

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = _next_node_id()

    # --- arity ----------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        raise NotImplementedError

    @property
    def num_outputs(self) -> int:
        raise NotImplementedError

    # --- per-port SDF rates ---------------------------------------------
    def pop_rate(self, port: int) -> int:
        """Tokens consumed from input ``port`` per firing."""
        raise NotImplementedError

    def push_rate(self, port: int) -> int:
        """Tokens produced on output ``port`` per firing."""
        raise NotImplementedError

    def peek_depth(self, port: int) -> int:
        """Tokens that must be present on input ``port`` to fire."""
        return self.pop_rate(port)

    # --- cost model -------------------------------------------------------
    @property
    def estimate(self) -> WorkEstimate:
        raise NotImplementedError

    @property
    def is_stateful(self) -> bool:
        return False

    @property
    def is_data_movement(self) -> bool:
        """True for splitters/joiners: pure reshuffling, zero compute."""
        return False

    def fire(self, windows: Sequence[Sequence],
             index: Optional[int] = None) -> list[list]:
        """Execute one firing given one input window per input port.

        ``index`` is the node's global firing index (only consumed by
        indexed filters).  Returns one output token list per output
        port.  Used by the functional interpreters; the timing simulator
        only looks at :attr:`estimate`.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}#{self.uid}>"


class Filter(Node):
    """A single-input single-output StreamIt filter.

    Sources are filters with ``pop == peek == 0`` and sinks are filters
    with ``push == 0``.  Only stateless filters are schedulable by the
    paper's framework; stateful ones are accepted in the IR (so the
    front end can represent them) but rejected by the scheduler.
    """

    def __init__(self, name: str, *, pop: int, push: int,
                 peek: Optional[int] = None,
                 work: Optional[WorkFunction] = None,
                 estimate: Optional[WorkEstimate] = None,
                 stateful: bool = False,
                 indexed: bool = False,
                 batch_work: Optional[Callable] = None) -> None:
        super().__init__(name)
        if pop < 0 or push < 0:
            raise GraphError(f"filter {name}: rates must be non-negative")
        if peek is None:
            peek = pop
        if peek < pop:
            raise GraphError(
                f"filter {name}: peek depth {peek} < pop rate {pop}")
        if pop == 0 and peek > 0:
            raise GraphError(f"filter {name}: a source cannot peek")
        self.pop = pop
        self.push = push
        self.peek = peek
        self.work = work
        self._estimate = estimate or default_estimate(pop, push, peek)
        self.stateful = stateful
        # An *indexed* filter's work takes (window, firing_index) and is
        # a pure function of both — still stateless in the scheduling
        # sense (firings are independent), but able to produce
        # distinguishable tokens.  Used mainly by benchmark sources so
        # functional-equivalence checks catch reordering bugs.
        self.indexed = indexed
        # Optional CUDA-C / plain-C body text supplied by the language
        # front end; the code generators emit these verbatim inside the
        # device / uniprocessor work functions.
        self.cuda_body: Optional[str] = None
        self.c_body: Optional[str] = None
        # Optional execution-backend attachments (repro.exec).
        # ``work_ast`` is the checked work AST + elaboration context
        # (lang.interp.WorkAstSpec) attached to stateless DSL filters;
        # ``batch_work`` maps a (firings, peek) window matrix to the
        # per-firing outputs of ``firings`` independent firings at once
        # (indexed filters receive (matrix, first_index)).  Both are
        # hints: executors that ignore them stay correct.
        self.work_ast = None
        self.batch_work: Optional[Callable] = batch_work

    # --- arity ----------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return 0 if self.pop == 0 and self.peek == 0 else 1

    @property
    def num_outputs(self) -> int:
        return 0 if self.push == 0 else 1

    @property
    def is_source(self) -> bool:
        return self.num_inputs == 0

    @property
    def is_sink(self) -> bool:
        return self.num_outputs == 0

    # --- rates ------------------------------------------------------------
    def pop_rate(self, port: int) -> int:
        self._check_port(port, self.num_inputs, "input")
        return self.pop

    def push_rate(self, port: int) -> int:
        self._check_port(port, self.num_outputs, "output")
        return self.push

    def peek_depth(self, port: int) -> int:
        self._check_port(port, self.num_inputs, "input")
        return self.peek

    def _check_port(self, port: int, limit: int, kind: str) -> None:
        if not 0 <= port < limit:
            raise GraphError(
                f"filter {self.name}: {kind} port {port} out of range")

    @property
    def estimate(self) -> WorkEstimate:
        return self._estimate

    @property
    def is_stateful(self) -> bool:
        return self.stateful

    def fire(self, windows: Sequence[Sequence],
             index: Optional[int] = None) -> list[list]:
        if self.work is None:
            raise GraphError(
                f"filter {self.name} has no work function; cannot execute")
        window = windows[0] if self.num_inputs else ()
        if len(window) < self.peek:
            raise GraphError(
                f"filter {self.name}: window of {len(window)} tokens is "
                f"smaller than peek depth {self.peek}")
        if self.indexed:
            if index is None:
                raise GraphError(
                    f"filter {self.name} is indexed; the executor must "
                    f"supply the firing index")
            out = list(self.work(window, index))
        else:
            out = list(self.work(window))
        if len(out) != self.push:
            raise GraphError(
                f"filter {self.name}: work produced {len(out)} tokens, "
                f"declared push rate is {self.push}")
        return [out] if self.num_outputs else []

    def copy(self, name: Optional[str] = None) -> "Filter":
        """Clone this filter (fresh uid) — used by graph flattening."""
        clone = Filter(name or self.name, pop=self.pop, push=self.push,
                       peek=self.peek, work=self.work,
                       estimate=self._estimate, stateful=self.stateful,
                       indexed=self.indexed, batch_work=self.batch_work)
        clone.cuda_body = self.cuda_body
        clone.c_body = self.c_body
        clone.work_ast = self.work_ast
        return clone


class SplitKind(Enum):
    DUPLICATE = "duplicate"
    ROUND_ROBIN = "roundrobin"


class Splitter(Node):
    """A StreamIt splitter node.

    A *duplicate* splitter copies each input token to every output; a
    *round-robin* splitter distributes ``weights[i]`` consecutive tokens
    to output ``i`` in turn (Section II-B of the paper).

    A duplicate splitter with uniform weight ``w > 1`` is a *block*
    duplicate: one firing copies a ``w``-token block to every output —
    semantically identical to ``w`` firings of a weight-1 duplicate
    splitter, but scheduled as one unit (the granularity StreamIt's
    fusion passes produce, which keeps instance counts sane for
    benchmarks like DES and MatrixMult).
    """

    def __init__(self, kind: SplitKind, weights: Sequence[int],
                 name: str = "split") -> None:
        super().__init__(name)
        weights = list(weights)
        if not weights:
            raise GraphError("splitter needs at least one output")
        if kind is SplitKind.DUPLICATE:
            if len(set(weights)) != 1 or weights[0] < 1:
                raise GraphError(
                    "duplicate splitter weights must be uniform and >= 1")
        elif any(w < 0 for w in weights):
            raise GraphError("splitter weights must be non-negative")
        if kind is SplitKind.ROUND_ROBIN and sum(weights) == 0:
            raise GraphError("round-robin splitter must move some tokens")
        self.kind = kind
        self.weights = weights

    @property
    def num_inputs(self) -> int:
        return 1

    @property
    def num_outputs(self) -> int:
        return len(self.weights)

    def pop_rate(self, port: int) -> int:
        if port != 0:
            raise GraphError(f"splitter {self.name}: input port {port}")
        if self.kind is SplitKind.DUPLICATE:
            return self.weights[0]
        return sum(self.weights)

    def push_rate(self, port: int) -> int:
        if not 0 <= port < len(self.weights):
            raise GraphError(f"splitter {self.name}: output port {port}")
        return self.weights[port]

    @property
    def estimate(self) -> WorkEstimate:
        return WorkEstimate(compute_ops=0, loads=self.pop_rate(0),
                            stores=sum(self.weights), registers=6)

    @property
    def is_data_movement(self) -> bool:
        return True

    def fire(self, windows: Sequence[Sequence],
             index: Optional[int] = None) -> list[list]:
        window = list(windows[0])
        if self.kind is SplitKind.DUPLICATE:
            block = window[:self.weights[0]]
            return [list(block) for _ in self.weights]
        outs: list[list] = []
        offset = 0
        for weight in self.weights:
            outs.append(window[offset:offset + weight])
            offset += weight
        return outs

    def copy(self, name: Optional[str] = None) -> "Splitter":
        return Splitter(self.kind, self.weights, name or self.name)


class Joiner(Node):
    """A StreamIt round-robin joiner (joiners are always round-robin)."""

    def __init__(self, weights: Sequence[int], name: str = "join") -> None:
        super().__init__(name)
        weights = list(weights)
        if not weights:
            raise GraphError("joiner needs at least one input")
        if any(w < 0 for w in weights):
            raise GraphError("joiner weights must be non-negative")
        if sum(weights) == 0:
            raise GraphError("joiner must move some tokens")
        self.weights = weights

    @property
    def num_inputs(self) -> int:
        return len(self.weights)

    @property
    def num_outputs(self) -> int:
        return 1

    def pop_rate(self, port: int) -> int:
        if not 0 <= port < len(self.weights):
            raise GraphError(f"joiner {self.name}: input port {port}")
        return self.weights[port]

    def push_rate(self, port: int) -> int:
        if port != 0:
            raise GraphError(f"joiner {self.name}: output port {port}")
        return sum(self.weights)

    @property
    def estimate(self) -> WorkEstimate:
        total = sum(self.weights)
        return WorkEstimate(compute_ops=0, loads=total, stores=total,
                            registers=6)

    @property
    def is_data_movement(self) -> bool:
        return True

    def fire(self, windows: Sequence[Sequence],
             index: Optional[int] = None) -> list[list]:
        out: list = []
        for port, weight in enumerate(self.weights):
            out.extend(list(windows[port])[:weight])
        return [out]

    def copy(self, name: Optional[str] = None) -> "Joiner":
        return Joiner(self.weights, name or self.name)


def identity_filter(name: str = "identity") -> Filter:
    """A pop-1 push-1 filter that forwards its input unchanged."""
    return Filter(name, pop=1, push=1, work=lambda win: [win[0]])


def source_from_sequence(values: Sequence, name: str = "source",
                         push: int = 1) -> Filter:
    """A stateful test source that cycles through ``values``.

    Only used by tests and examples — the scheduler rejects stateful
    filters, so benchmark graphs use pure generator sources instead.
    """
    values = list(values)
    if not values:
        raise GraphError("source sequence must be non-empty")
    state = {"i": 0}

    def work(_window: Sequence) -> list:
        out = []
        for _ in range(push):
            out.append(values[state["i"] % len(values)])
            state["i"] += 1
        return out

    return Filter(name, pop=0, push=push, work=work, stateful=True)


def indexed_source(name: str = "source", push: int = 1,
                   fn: Optional[Callable[[int], object]] = None,
                   batch_work: Optional[Callable] = None) -> Filter:
    """A *stateless* source whose tokens are a pure function of their
    global position: firing ``i`` pushes ``fn(i*push) .. fn(i*push +
    push - 1)``.  Independent firings make it schedulable by the SWP
    framework while still producing distinguishable tokens — the
    benchmark graphs use these so functional-equivalence checks catch
    token reordering.

    ``batch_work`` (optional) receives ``(matrix, first_index)`` and
    must return the same tokens as ``firings`` consecutive scalar
    firings starting at ``first_index``.
    """
    if fn is None:
        fn = float

    def work(_window: Sequence, index: int) -> list:
        base = index * push
        return [fn(base + offset) for offset in range(push)]

    return Filter(name, pop=0, push=push, work=work, indexed=True,
                  batch_work=batch_work)


def counter_source(name: str = "counter", push: int = 1,
                   start: int = 0) -> Filter:
    """A stateful source producing 0, 1, 2, ... (tests/examples only)."""
    state = {"i": start}

    def work(_window: Sequence) -> list:
        out = list(range(state["i"], state["i"] + push))
        state["i"] += push
        return out

    return Filter(name, pop=0, push=push, work=work, stateful=True)
