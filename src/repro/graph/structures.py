"""Hierarchical StreamIt constructs: Pipeline, SplitJoin, FeedbackLoop.

StreamIt programs are a *hierarchical composition of simple stream
structures* (paper Fig. 3) which the compiler flattens into a plain
filter/channel graph.  This module defines the composition tree; the
flattener in :mod:`repro.graph.flatten` lowers it to a
:class:`~repro.graph.graph.StreamGraph`.

Each structure is single-input single-output (possibly zero-rate at the
outermost ends, for sources and sinks).  Filters can be placed in the
tree directly; they are *prototypes* — flattening clones them so the
same definition can appear at several points of the hierarchy (as in
the recursive bitonic-sort benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..errors import GraphError
from .nodes import Filter, Joiner, SplitKind, Splitter

# Anything placeable inside a hierarchical structure.
StreamElement = Union[Filter, "Pipeline", "SplitJoin", "FeedbackLoop"]


@dataclass
class Pipeline:
    """A linear sequence of stream elements, output to input."""

    children: list
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if not self.children:
            raise GraphError(f"pipeline {self.name} has no children")

    def add(self, element: StreamElement) -> "Pipeline":
        self.children.append(element)
        return self


@dataclass
class SplitJoin:
    """A splitter fanning out to parallel branches joined round-robin.

    ``split`` is either the string ``"duplicate"`` or a sequence of
    round-robin weights (one per branch).  ``join`` is the sequence of
    joiner weights; it defaults to weight 1 per branch.
    """

    branches: list
    split: Union[str, Sequence[int]] = "duplicate"
    join: Optional[Sequence[int]] = None
    name: str = "splitjoin"
    #: Block size for duplicate splitters: one splitter firing copies a
    #: ``block``-token chunk to every branch (StreamIt-fusion
    #: granularity; semantically identical to ``block`` unit firings).
    block: int = 1

    def __post_init__(self) -> None:
        if not self.branches:
            raise GraphError(f"splitjoin {self.name} has no branches")
        if isinstance(self.split, str) and self.split != "duplicate":
            raise GraphError(
                f"splitjoin {self.name}: split must be 'duplicate' or a "
                f"weight list, got {self.split!r}")
        if not isinstance(self.split, str):
            if len(list(self.split)) != len(self.branches):
                raise GraphError(
                    f"splitjoin {self.name}: {len(list(self.split))} split "
                    f"weights for {len(self.branches)} branches")
        if self.join is not None and len(list(self.join)) != len(self.branches):
            raise GraphError(
                f"splitjoin {self.name}: {len(list(self.join))} join "
                f"weights for {len(self.branches)} branches")
        if self.block < 1:
            raise GraphError(
                f"splitjoin {self.name}: block size must be >= 1")
        if self.block > 1 and not isinstance(self.split, str):
            raise GraphError(
                f"splitjoin {self.name}: block size applies to duplicate "
                f"splitters only")

    def make_splitter(self) -> Splitter:
        if isinstance(self.split, str):
            return Splitter(SplitKind.DUPLICATE,
                            [self.block] * len(self.branches),
                            name=f"{self.name}.split")
        return Splitter(SplitKind.ROUND_ROBIN, list(self.split),
                        name=f"{self.name}.split")

    def make_joiner(self) -> Joiner:
        weights = list(self.join) if self.join is not None else \
            [1] * len(self.branches)
        return Joiner(weights, name=f"{self.name}.join")


@dataclass
class FeedbackLoop:
    """A StreamIt feedback loop (paper Fig. 3(c)).

    Structure: a joiner merges the external input (weight
    ``join_weights[0]``) with the loop-back stream (weight
    ``join_weights[1]``); the ``body`` consumes the merged stream; a
    splitter sends ``split_weights[0]`` tokens out and
    ``split_weights[1]`` tokens into the ``loop`` element, whose output
    feeds back to the joiner.  ``initial_tokens`` are enqueued on the
    feedback channel so the loop can start (StreamIt's ``enqueue``).
    """

    body: StreamElement
    loop: StreamElement
    join_weights: Sequence[int] = (1, 1)
    split_weights: Sequence[int] = (1, 1)
    initial_tokens: Sequence = ()
    name: str = "feedbackloop"

    def __post_init__(self) -> None:
        if len(list(self.join_weights)) != 2:
            raise GraphError(
                f"feedback loop {self.name}: join_weights must have 2 "
                f"entries (input, loopback)")
        if len(list(self.split_weights)) != 2:
            raise GraphError(
                f"feedback loop {self.name}: split_weights must have 2 "
                f"entries (output, loopback)")
        if not self.initial_tokens:
            raise GraphError(
                f"feedback loop {self.name}: needs initial tokens on the "
                f"feedback path, otherwise it deadlocks")

    def make_joiner(self) -> Joiner:
        return Joiner(list(self.join_weights), name=f"{self.name}.join")

    def make_splitter(self) -> Splitter:
        return Splitter(SplitKind.ROUND_ROBIN, list(self.split_weights),
                        name=f"{self.name}.split")
