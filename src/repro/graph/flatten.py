"""Flattening: lower a hierarchical stream program to a flat graph.

Mirrors the StreamIt compiler's flattening pass (Thies et al., CC'02),
which the paper relies on: "A StreamIt program is expressed as a
hierarchical composition of simple stream structures, which may then be
flattened into a set of filters connected by FIFO channels."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import GraphError
from .graph import StreamGraph
from .nodes import Filter, Node
from .structures import FeedbackLoop, Pipeline, SplitJoin, StreamElement


@dataclass
class _Ports:
    """Entry/exit nodes of a flattened sub-structure.

    ``entry is None`` means the structure has no input (it starts with a
    source); likewise ``exit`` for sinks.
    """

    entry: Optional[Node]
    exit: Optional[Node]


def flatten(element: StreamElement, name: str = "stream") -> StreamGraph:
    """Flatten a hierarchical stream program into a :class:`StreamGraph`.

    The outermost element must be closed: no dangling input or output
    (i.e. it starts with a source filter and ends with a sink filter).
    """
    graph = StreamGraph(name)
    ports = _flatten_into(graph, element)
    if ports.entry is not None:
        raise GraphError(
            "top-level stream has an unconnected input; the outermost "
            "pipeline must begin with a source filter (pop == 0)")
    if ports.exit is not None:
        raise GraphError(
            "top-level stream has an unconnected output; the outermost "
            "pipeline must end with a sink filter (push == 0)")
    graph.validate()
    return graph


def _flatten_into(graph: StreamGraph, element: StreamElement) -> _Ports:
    if isinstance(element, Filter):
        node = graph.add_node(element.copy())
        entry = node if node.num_inputs else None
        exit_ = node if node.num_outputs else None
        return _Ports(entry, exit_)
    if isinstance(element, Pipeline):
        return _flatten_pipeline(graph, element)
    if isinstance(element, SplitJoin):
        return _flatten_splitjoin(graph, element)
    if isinstance(element, FeedbackLoop):
        return _flatten_feedback(graph, element)
    raise GraphError(
        f"cannot flatten object of type {type(element).__name__}; expected "
        f"Filter, Pipeline, SplitJoin or FeedbackLoop")


def _flatten_pipeline(graph: StreamGraph, pipe: Pipeline) -> _Ports:
    entry: Optional[Node] = None
    prev_exit: Optional[Node] = None
    for index, child in enumerate(pipe.children):
        ports = _flatten_into(graph, child)
        if index == 0:
            entry = ports.entry
        else:
            if prev_exit is None:
                raise GraphError(
                    f"pipeline {pipe.name}: child {index - 1} is a sink but "
                    f"is followed by another element")
            if ports.entry is None:
                raise GraphError(
                    f"pipeline {pipe.name}: child {index} is a source but "
                    f"has a predecessor")
            graph.connect(prev_exit, ports.entry)
        prev_exit = ports.exit
    return _Ports(entry, prev_exit)


def _flatten_splitjoin(graph: StreamGraph, sj: SplitJoin) -> _Ports:
    splitter = graph.add_node(sj.make_splitter())
    joiner = graph.add_node(sj.make_joiner())
    for index, branch in enumerate(sj.branches):
        ports = _flatten_into(graph, branch)
        if ports.entry is None or ports.exit is None:
            raise GraphError(
                f"splitjoin {sj.name}: branch {index} must have both an "
                f"input and an output")
        graph.connect(splitter, ports.entry, src_port=index)
        graph.connect(ports.exit, joiner, dst_port=index)
    return _Ports(splitter, joiner)


def _flatten_feedback(graph: StreamGraph, fb: FeedbackLoop) -> _Ports:
    joiner = graph.add_node(fb.make_joiner())
    splitter = graph.add_node(fb.make_splitter())
    body = _flatten_into(graph, fb.body)
    loop = _flatten_into(graph, fb.loop)
    for ports, label in ((body, "body"), (loop, "loop")):
        if ports.entry is None or ports.exit is None:
            raise GraphError(
                f"feedback loop {fb.name}: {label} must have both an input "
                f"and an output")
    graph.connect(joiner, body.entry)
    graph.connect(body.exit, splitter)
    graph.connect(splitter, loop.entry, src_port=1)
    graph.connect(loop.exit, joiner, dst_port=1,
                  initial_tokens=list(fb.initial_tokens))
    return _Ports(joiner, splitter)
