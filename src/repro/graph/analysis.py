"""Static analyses over stream graphs.

Metrics the scheduler's users (and our own benchmark reports) care
about: per-iteration work distribution, the compute/data-movement
split that drives the DCT/MatrixMult behaviour in the paper, pipeline
depth, and the critical (heaviest) path through one steady iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import StreamGraph
from .nodes import Node
from .rates import SteadyState, solve_rates


@dataclass(frozen=True)
class WorkProfile:
    """Per-iteration work breakdown of a stream graph."""

    total_compute_ops: int
    total_memory_ops: int
    data_movement_memory_ops: int
    num_nodes: int
    num_data_movers: int

    @property
    def movement_fraction(self) -> float:
        """Share of token traffic carried by pure data movers — the
        quantity that predicts whether the Serial scheme is competitive
        (paper Section V-B)."""
        if self.total_memory_ops == 0:
            return 0.0
        return self.data_movement_memory_ops / self.total_memory_ops

    @property
    def ops_per_token(self) -> float:
        if self.total_memory_ops == 0:
            return float("inf")
        return self.total_compute_ops / self.total_memory_ops


def work_profile(graph: StreamGraph,
                 steady: SteadyState | None = None) -> WorkProfile:
    """Aggregate one steady iteration's work by node class."""
    steady = steady or solve_rates(graph)
    compute = 0
    memory = 0
    movement = 0
    movers = 0
    for node in graph.nodes:
        firings = steady[node]
        est = node.estimate
        compute += firings * est.compute_ops
        ops = firings * est.total_memory_ops
        memory += ops
        if node.is_data_movement or est.compute_ops == 0:
            movement += ops
            movers += 1
    return WorkProfile(total_compute_ops=compute,
                       total_memory_ops=memory,
                       data_movement_memory_ops=movement,
                       num_nodes=len(graph.nodes),
                       num_data_movers=movers)


def pipeline_depth(graph: StreamGraph) -> int:
    """Longest node chain from a source to a sink (ignoring feedback
    edges with initial tokens)."""
    order = graph.topological_order()
    depth = {node.uid: 1 for node in graph.nodes}
    for node in order:
        for channel in graph.output_channels(node):
            if channel.num_initial_tokens:
                continue
            candidate = depth[node.uid] + 1
            if candidate > depth[channel.dst.uid]:
                depth[channel.dst.uid] = candidate
    return max(depth.values())


def critical_path(graph: StreamGraph,
                  steady: SteadyState | None = None) -> list[Node]:
    """The source-to-sink chain with the most per-iteration work.

    Node weight is ``k_v * (compute_ops + memory_ops)``; the heaviest
    path is the serial bottleneck a pipelined schedule must hide.
    """
    steady = steady or solve_rates(graph)

    def weight(node: Node) -> float:
        est = node.estimate
        return steady[node] * (est.compute_ops + est.total_memory_ops)

    order = graph.topological_order()
    best: dict[int, float] = {}
    parent: dict[int, Node | None] = {}
    for node in order:
        incoming = [
            channel.src for channel in graph.input_channels(node)
            if not channel.num_initial_tokens]
        if incoming:
            prev = max(incoming, key=lambda n: best[n.uid])
            best[node.uid] = best[prev.uid] + weight(node)
            parent[node.uid] = prev
        else:
            best[node.uid] = weight(node)
            parent[node.uid] = None
    end = max(graph.nodes, key=lambda n: best[n.uid])
    path = [end]
    while parent[path[-1].uid] is not None:
        path.append(parent[path[-1].uid])
    return list(reversed(path))


def load_balance_bound(graph: StreamGraph, num_sms: int,
                       steady: SteadyState | None = None) -> float:
    """Best-case speedup from spreading one iteration over ``num_sms``
    processors: total work / max(per-processor share, heaviest node)."""
    steady = steady or solve_rates(graph)
    weights = []
    for node in graph.nodes:
        est = node.estimate
        weights.append(steady[node]
                       * (est.compute_ops + est.total_memory_ops))
    total = sum(weights)
    if total == 0:
        return 1.0
    bound = total / max(total / num_sms, max(weights))
    return bound


def summarize(graph: StreamGraph) -> str:
    """A one-paragraph analysis report (used by the CLI and examples)."""
    steady = solve_rates(graph)
    profile = work_profile(graph, steady)
    depth = pipeline_depth(graph)
    path = critical_path(graph, steady)
    return (
        f"{graph.summary()}\n"
        f"steady iteration: {steady.total_firings} firings, "
        f"{profile.total_compute_ops} compute ops, "
        f"{profile.total_memory_ops} token accesses "
        f"({100 * profile.movement_fraction:.0f}% pure data movement)\n"
        f"pipeline depth {depth}; critical path: "
        + " -> ".join(node.name for node in path[:8])
        + (" ..." if len(path) > 8 else ""))
