"""Graphviz DOT export for stream graphs and schedules.

``to_dot`` renders the flat graph (filters as boxes, splitters/joiners
as diamonds, channel labels carrying the SDF rates); ``schedule_to_dot``
additionally colours nodes by assigned SM and annotates pipeline
stages — handy for eyeballing what the ILP decided.
"""

from __future__ import annotations

from .graph import StreamGraph
from .nodes import Joiner, Splitter

_PALETTE = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
    "#a6cee3", "#fdbf6f", "#cab2d6", "#b2df8a",
]


def _node_id(node) -> str:
    return f"n{node.uid}"


def _shape(node) -> str:
    if isinstance(node, Splitter):
        return "invtriangle"
    if isinstance(node, Joiner):
        return "triangle"
    return "box"


def to_dot(graph: StreamGraph, steady=None) -> str:
    """Render the flat stream graph as a DOT digraph."""
    lines = [f'digraph "{graph.name}" {{',
             "  rankdir=TB;",
             '  node [fontname="Helvetica", fontsize=10];']
    for node in graph.nodes:
        label = node.name
        if steady is not None:
            label += f"\\nk={steady[node]}"
        lines.append(
            f'  {_node_id(node)} [label="{label}", '
            f'shape={_shape(node)}];')
    for channel in graph.channels:
        label = f"{channel.production_rate}:{channel.consumption_rate}"
        if channel.num_initial_tokens:
            label += f" m={channel.num_initial_tokens}"
        if channel.peek_depth > channel.consumption_rate:
            label += f" peek={channel.peek_depth}"
        lines.append(
            f"  {_node_id(channel.src)} -> {_node_id(channel.dst)} "
            f'[label="{label}", fontsize=8];')
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(program, schedule) -> str:
    """Render a scheduled program: colour = SM, annotation = stage."""
    graph = program.graph
    lines = [f'digraph "{graph.name}_schedule" {{',
             "  rankdir=TB;",
             '  node [fontname="Helvetica", fontsize=10, '
             'style=filled];']
    for node in graph.nodes:
        idx = program.index_of(node)
        placements = [schedule.placement(idx, k)
                      for k in range(program.problem.firings[idx])]
        sms = sorted({p.sm for p in placements})
        stages = sorted({p.stage for p in placements})
        color = _PALETTE[sms[0] % len(_PALETTE)]
        label = (f"{node.name}\\nSM{','.join(map(str, sms))} "
                 f"f={','.join(map(str, stages))}")
        lines.append(
            f'  {_node_id(node)} [label="{label}", '
            f'shape={_shape(node)}, fillcolor="{color}"];')
    for channel in graph.channels:
        src_idx = program.index_of(channel.src)
        dst_idx = program.index_of(channel.dst)
        cross = schedule.sm_of(src_idx, 0) != schedule.sm_of(dst_idx, 0)
        style = "dashed" if cross else "solid"
        lines.append(
            f"  {_node_id(channel.src)} -> {_node_id(channel.dst)} "
            f"[style={style}];")
    lines.append("}")
    return "\n".join(lines)
