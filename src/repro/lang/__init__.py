"""A StreamIt-like surface language front end.

The paper compiles StreamIt source; this package provides the matching
front end for the reproduction: a lexer, a recursive-descent parser, an
elaborator that instantiates parameterized stream templates into the
graph IR, and dual lowering of filter work bodies to Python closures
(for functional execution) and CUDA-C text (for code generation).

Quick use::

    from repro.lang import build_graph
    graph = build_graph(source_text, root="Main")
"""

from .ast import Program
from .elaborate import build_graph, elaborate
from .interp import compile_work_function, evaluate_const, work_body_to_cuda
from .lexer import Token, TokenType, tokenize
from .parser import parse_program

__all__ = [
    "Program",
    "Token",
    "TokenType",
    "build_graph",
    "compile_work_function",
    "elaborate",
    "evaluate_const",
    "parse_program",
    "tokenize",
    "work_body_to_cuda",
]
