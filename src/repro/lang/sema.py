"""Semantic analysis (type checking) for the StreamIt-like language.

Runs before elaboration and rejects ill-typed programs with source-level
diagnostics rather than letting them fail deep inside the interpreter:

* name resolution (undefined variables, duplicate declarations,
  unknown streams, wrong instantiation arity);
* a small static type system — ``int``, ``float``, ``boolean`` and
  fixed-size arrays of ``int``/``float``:
  - arithmetic promotes int to float, never the reverse implicitly;
  - assigning a float into an int variable is a narrowing error;
  - conditions must be boolean; logical operators take booleans;
  - comparisons yield boolean;
* stream-type checking — ``pop``/``peek`` have the filter's input type,
  ``push`` takes the output type; a ``void`` input forbids pop/peek;
* rate and weight expressions must be of type int;
* intrinsic call signatures.

The checker is deliberately flow-insensitive (no definite-assignment
analysis): variables get their declared type and a default value, like
StreamIt/C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SemanticError
from . import ast

INT = "int"
FLOAT = "float"
BOOL = "boolean"
_NUMERIC = (INT, FLOAT)

#: intrinsic name -> (accepts_n_args, result given arg types)
_FLOAT_FNS = {"sin", "cos", "tan", "atan", "exp", "log", "sqrt"}
_POLY_1 = {"abs", "floor", "ceil", "round"}
_POLY_2 = {"min", "max", "pow"}


@dataclass(frozen=True)
class Type:
    base: str                 # int | float | boolean
    array: bool = False

    def __str__(self) -> str:
        return f"{self.base}[]" if self.array else self.base


def _scalar(base: str) -> Type:
    return Type(base)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: dict[str, Type] = {}

    def declare(self, name: str, type_: Type) -> None:
        if name in self.names:
            raise SemanticError(f"duplicate declaration of {name!r}")
        self.names[name] = type_

    def lookup(self, name: str) -> Type:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise SemanticError(f"undefined variable {name!r}")


class TypeChecker:
    """Checks one filter's work body."""

    def __init__(self, decl: ast.FilterDecl) -> None:
        self.decl = decl
        self.input_type = decl.stream_type.input
        self.output_type = decl.stream_type.output
        self.allow_stream_ops = True

    def check(self) -> None:
        scope = _Scope()
        for param in self.decl.params:
            if param.type_name not in (INT, FLOAT, BOOL):
                raise SemanticError(
                    f"filter {self.decl.name}: parameter "
                    f"{param.name!r} has unsupported type "
                    f"{param.type_name!r}")
            scope.declare(param.name, _scalar(param.type_name))
        # State fields are visible to both init and work.
        for field in self.decl.fields:
            self.check_stmt(field, scope)
        if self.decl.init_body:
            self.allow_stream_ops = False
            try:
                self.check_block(self.decl.init_body, _Scope(scope))
            finally:
                self.allow_stream_ops = True
        for rate_name, expr in (("pop", self.decl.work.pop),
                                ("push", self.decl.work.push),
                                ("peek", self.decl.work.peek)):
            if expr is None:
                continue
            rate_type = self.expr_type(expr, scope)
            if rate_type != _scalar(INT):
                raise SemanticError(
                    f"filter {self.decl.name}: {rate_name} rate must be "
                    f"an int expression, got {rate_type}")
        self.check_block(self.decl.work.body, _Scope(scope))

    # ------------------------------------------------------------------
    def check_block(self, stmts, scope: _Scope) -> None:
        for stmt in stmts:
            self.check_stmt(stmt, scope)

    def check_stmt(self, stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.type_name not in (INT, FLOAT, BOOL):
                raise SemanticError(
                    f"unsupported variable type {stmt.type_name!r}")
            if stmt.array_size is not None:
                if stmt.type_name == BOOL:
                    raise SemanticError("boolean arrays are not supported")
                size_type = self.expr_type(stmt.array_size, scope)
                if size_type != _scalar(INT):
                    raise SemanticError(
                        f"array size must be int, got {size_type}")
                if stmt.init is not None:
                    raise SemanticError(
                        "array declarations cannot have initializers")
                scope.declare(stmt.name, Type(stmt.type_name, array=True))
                return
            declared = _scalar(stmt.type_name)
            if stmt.init is not None:
                self.require_assignable(
                    declared, self.expr_type(stmt.init, scope),
                    f"initializer of {stmt.name!r}")
            scope.declare(stmt.name, declared)
        elif isinstance(stmt, ast.Assign):
            target = self.expr_type(stmt.target, scope)
            value = self.expr_type(stmt.value, scope)
            if stmt.op == "=":
                self.require_assignable(target, value, "assignment")
            else:
                if target.base not in _NUMERIC or target.array:
                    raise SemanticError(
                        f"compound assignment needs a numeric scalar "
                        f"target, got {target}")
                self.require_assignable(
                    target, self.merge_numeric(target, value,
                                               stmt.op[0]),
                    "compound assignment")
        elif isinstance(stmt, ast.PushStmt):
            if not self.allow_stream_ops:
                raise SemanticError(
                    f"filter {self.decl.name}: init blocks cannot push")
            if self.output_type == "void":
                raise SemanticError(
                    f"filter {self.decl.name}: void-output filter "
                    f"cannot push")
            value = self.expr_type(stmt.value, scope)
            self.require_assignable(_scalar(self.output_type), value,
                                    "push")
        elif isinstance(stmt, ast.PopStmt):
            self.require_input("pop")
        elif isinstance(stmt, ast.ExprStmt):
            self.expr_type(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self.require_bool(stmt.condition, scope, "if condition")
            self.check_block(stmt.then_body, _Scope(scope))
            self.check_block(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, ast.ForStmt):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self.require_bool(stmt.condition, inner, "for condition")
            if stmt.update is not None:
                self.check_stmt(stmt.update, inner)
            self.check_block(stmt.body, _Scope(inner))
        elif isinstance(stmt, ast.WhileStmt):
            self.require_bool(stmt.condition, scope, "while condition")
            self.check_block(stmt.body, _Scope(scope))
        else:
            raise SemanticError(
                f"unknown statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def expr_type(self, expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return _scalar(INT)
        if isinstance(expr, ast.FloatLit):
            return _scalar(FLOAT)
        if isinstance(expr, ast.BoolLit):
            return _scalar(BOOL)
        if isinstance(expr, ast.Name):
            return scope.lookup(expr.ident)
        if isinstance(expr, ast.Index):
            base = self.expr_type(expr.base, scope)
            if not base.array:
                raise SemanticError(f"cannot index a {base}")
            index = self.expr_type(expr.index, scope)
            if index != _scalar(INT):
                raise SemanticError(
                    f"array index must be int, got {index}")
            return _scalar(base.base)
        if isinstance(expr, ast.Unary):
            operand = self.expr_type(expr.operand, scope)
            if expr.op == "-":
                if operand.base not in _NUMERIC or operand.array:
                    raise SemanticError(f"cannot negate a {operand}")
                return operand
            if operand != _scalar(BOOL):
                raise SemanticError(f"'!' needs a boolean, got {operand}")
            return operand
        if isinstance(expr, ast.Binary):
            return self.binary_type(expr, scope)
        if isinstance(expr, ast.Call):
            return self.call_type(expr, scope)
        if isinstance(expr, ast.PeekExpr):
            self.require_input("peek")
            depth = self.expr_type(expr.depth, scope)
            if depth != _scalar(INT):
                raise SemanticError(
                    f"peek depth must be int, got {depth}")
            return _scalar(self.input_type)
        if isinstance(expr, ast.PopExpr):
            self.require_input("pop")
            return _scalar(self.input_type)
        raise SemanticError(f"unknown expression {type(expr).__name__}")

    def binary_type(self, expr: ast.Binary, scope: _Scope) -> Type:
        left = self.expr_type(expr.left, scope)
        right = self.expr_type(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            if left != _scalar(BOOL) or right != _scalar(BOOL):
                raise SemanticError(
                    f"'{op}' needs boolean operands, got {left} and "
                    f"{right}")
            return _scalar(BOOL)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.array or right.array:
                raise SemanticError(f"cannot compare arrays with '{op}'")
            if (left.base in _NUMERIC) != (right.base in _NUMERIC):
                raise SemanticError(
                    f"cannot compare {left} with {right}")
            return _scalar(BOOL)
        return self.merge_numeric(left, right, op)

    def merge_numeric(self, left: Type, right: Type, op: str) -> Type:
        if left.array or right.array or \
                left.base not in _NUMERIC or right.base not in _NUMERIC:
            raise SemanticError(
                f"'{op}' needs numeric scalars, got {left} and {right}")
        if FLOAT in (left.base, right.base):
            return _scalar(FLOAT)
        return _scalar(INT)

    def call_type(self, expr: ast.Call, scope: _Scope) -> Type:
        args = [self.expr_type(a, scope) for a in expr.args]
        for arg in args:
            if arg.array or arg.base not in _NUMERIC:
                raise SemanticError(
                    f"{expr.func}() needs numeric scalar arguments, "
                    f"got {arg}")
        if expr.func in _FLOAT_FNS:
            if len(args) != 1:
                raise SemanticError(f"{expr.func}() takes one argument")
            return _scalar(FLOAT)
        if expr.func in _POLY_1:
            if len(args) != 1:
                raise SemanticError(f"{expr.func}() takes one argument")
            if expr.func in ("floor", "ceil", "round"):
                return _scalar(INT)
            return args[0]
        if expr.func in _POLY_2:
            if len(args) != 2:
                raise SemanticError(f"{expr.func}() takes two arguments")
            return self.merge_numeric(args[0], args[1], expr.func)
        raise SemanticError(f"unknown function {expr.func!r}")

    # ------------------------------------------------------------------
    def require_input(self, what: str) -> None:
        if not self.allow_stream_ops:
            raise SemanticError(
                f"filter {self.decl.name}: init blocks cannot {what}")
        if self.input_type == "void":
            raise SemanticError(
                f"filter {self.decl.name}: void-input filter cannot "
                f"{what}")

    def require_bool(self, expr, scope: _Scope, context: str) -> None:
        found = self.expr_type(expr, scope)
        if found != _scalar(BOOL):
            raise SemanticError(f"{context} must be boolean, got {found}")

    def require_assignable(self, target: Type, value: Type,
                           context: str) -> None:
        if target == value:
            return
        if target == _scalar(FLOAT) and value == _scalar(INT):
            return  # implicit widening
        raise SemanticError(
            f"{context}: cannot assign {value} to {target} "
            f"(int-to-float widening is the only implicit conversion)")


def analyze_program(program: ast.Program) -> None:
    """Type-check every declaration; raise SemanticError on the first
    problem found."""
    names = set()
    for decl in program.declarations:
        if decl.name in names:
            raise SemanticError(f"duplicate stream declaration "
                                f"{decl.name!r}")
        names.add(decl.name)

    declared = {d.name: d for d in program.declarations}
    for decl in program.declarations:
        if isinstance(decl, ast.FilterDecl):
            TypeChecker(decl).check()
        else:
            _check_composite(decl, declared)


def _check_composite(decl, declared: dict) -> None:
    adds = []
    if isinstance(decl, ast.PipelineDecl):
        adds = list(decl.adds)
    elif isinstance(decl, ast.SplitJoinDecl):
        adds = list(decl.adds)
    elif isinstance(decl, ast.FeedbackLoopDecl):
        adds = [decl.body, decl.loop]
    for add in adds:
        child = declared.get(add.stream_name)
        if child is None:
            raise SemanticError(
                f"{decl.name}: unknown stream {add.stream_name!r}")
        if len(add.args) != len(child.params):
            raise SemanticError(
                f"{decl.name}: {add.stream_name} expects "
                f"{len(child.params)} arguments, got {len(add.args)}")
