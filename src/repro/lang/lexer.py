"""Lexer for the StreamIt-like surface language.

The language is a faithful subset of StreamIt 2.1 syntax (Thies et al.,
CC'02): filter / pipeline / splitjoin / feedbackloop declarations,
``work pop/push/peek`` clauses, and a C-like statement language inside
work bodies.  See :mod:`repro.lang.parser` for the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import LexError

KEYWORDS = {
    "filter", "pipeline", "splitjoin", "feedbackloop",
    "work", "pop", "push", "peek", "add", "split", "join",
    "duplicate", "roundrobin", "body", "loop", "enqueue",
    "int", "float", "void", "boolean",
    "for", "while", "if", "else", "return",
    "true", "false",
}

SYMBOLS = [
    "->", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=",
    "{", "}", "(", ")", "[", "]", ";", ",", "=",
    "+", "-", "*", "/", "%", "<", ">", "!",
]


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.type.value} {self.value!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            kind = TokenType.FLOAT if (seen_dot or seen_exp) \
                else TokenType.INT
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenType.KEYWORD if text in KEYWORDS \
                else TokenType.IDENT
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        # symbols (longest match first)
        for symbol in SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, line, column))
                i += len(symbol)
                column += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
