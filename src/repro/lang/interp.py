"""Work-body evaluation and CUDA emission for the surface language.

A parsed ``work`` body is lowered two ways:

* :func:`compile_work_function` — a Python closure matching the graph
  IR's :data:`~repro.graph.nodes.WorkFunction` contract (window in,
  pushed tokens out), used by the interpreters and executors;
* :func:`work_body_to_cuda` — the equivalent CUDA-C text, attached to
  the generated filter as ``cuda_body`` so the code generator emits the
  real body instead of a scaffold.

Both consume the same AST, so the functional simulation and the emitted
source cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..errors import SemanticError
from . import ast

#: Math intrinsics available inside work bodies (StreamIt's built-ins).
INTRINSICS: dict[str, Callable] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "abs": abs,
    "min": min,
    "max": max,
    "pow": pow,
    "round": round,
}

_MAX_LOOP_STEPS = 1_000_000


@dataclass(frozen=True, eq=False)
class WorkAstSpec:
    """The checked work-function AST plus its elaboration context.

    The elaborator attaches one of these to every *stateless* DSL
    filter so downstream execution backends (:mod:`repro.exec`) can
    re-lower the body — to specialized Python source or to a
    NumPy-vectorized batch kernel — instead of tree-walking it.  The
    interpreter closure built by :func:`compile_work_function` stays
    the semantic reference; every other lowering must match it
    byte-for-byte on valid programs.
    """

    work: ast.WorkDecl
    params: Mapping[str, object]
    pop: int
    push: int
    peek: int


class _Env:
    """Lexically-flat variable environment for one work invocation."""

    __slots__ = ("values",)

    def __init__(self, params: Mapping[str, object]) -> None:
        self.values: dict[str, object] = dict(params)

    def get(self, name: str):
        try:
            return self.values[name]
        except KeyError:
            raise SemanticError(f"undefined variable {name!r}") from None

    def set(self, name: str, value) -> None:
        self.values[name] = value


class _WorkState:
    """Window cursor + output accumulator for one firing."""

    __slots__ = ("window", "cursor", "pushed")

    def __init__(self, window: Sequence) -> None:
        self.window = window
        self.cursor = 0
        self.pushed: list = []

    def pop(self):
        if self.cursor >= len(self.window):
            raise SemanticError("pop() past the declared peek window")
        value = self.window[self.cursor]
        self.cursor += 1
        return value

    def peek(self, depth: int):
        index = self.cursor + depth
        if not 0 <= index < len(self.window):
            raise SemanticError(
                f"peek({depth}) outside the declared peek window")
        return self.window[index]


def evaluate_const(expr: ast.Expr, params: Mapping[str, object]):
    """Evaluate a compile-time expression (rates, weights, arguments)."""
    state = _WorkState(())
    env = _Env(params)
    value = _eval(expr, env, state)
    if state.pushed or state.cursor:
        raise SemanticError("pop/push are not allowed in constant context")
    return value


def compile_work_function(work: ast.WorkDecl,
                          params: Mapping[str, object],
                          pop: int, push: int, peek: int):
    """Compile the body to a Python work function (window -> outputs)."""

    def run(window: Sequence) -> list:
        state = _WorkState(list(window[:peek]))
        env = _Env(params)
        _exec_block(work.body, env, state)
        if len(state.pushed) != push:
            raise SemanticError(
                f"work body pushed {len(state.pushed)} tokens, declared "
                f"push {push}")
        if state.cursor > pop:
            raise SemanticError(
                f"work body popped {state.cursor} tokens, declared pop "
                f"{pop}")
        return state.pushed

    return run


def compile_stateful_work_function(fields, init_body, work: ast.WorkDecl,
                                   params: Mapping[str, object],
                                   pop: int, push: int, peek: int):
    """Compile a stateful filter: fields persist across firings.

    The field environment is seeded by executing the declarations and
    the ``init`` block once (stream operations are rejected there by
    the type checker); each firing then runs against a fresh local
    environment layered over the persistent fields, and field values
    written during the firing are carried forward.
    """
    persistent = _Env(params)
    init_state = _WorkState(())
    for field in fields:
        _exec(field, persistent, init_state)
    _exec_block(init_body, persistent, init_state)
    if init_state.pushed or init_state.cursor:
        raise SemanticError("init blocks cannot push or pop")
    field_names = [field.name for field in fields]

    def run(window: Sequence) -> list:
        state = _WorkState(list(window[:peek]))
        env = _Env(params)
        for name in field_names:
            env.set(name, persistent.get(name))
        _exec_block(work.body, env, state)
        for name in field_names:
            persistent.set(name, env.get(name))
        if len(state.pushed) != push:
            raise SemanticError(
                f"work body pushed {len(state.pushed)} tokens, declared "
                f"push {push}")
        if state.cursor > pop:
            raise SemanticError(
                f"work body popped {state.cursor} tokens, declared pop "
                f"{pop}")
        return state.pushed

    return run


# ---------------------------------------------------------------------------
# statement execution
# ---------------------------------------------------------------------------
def _exec_block(stmts, env: _Env, state: _WorkState) -> None:
    for stmt in stmts:
        _exec(stmt, env, state)


def _exec(stmt, env: _Env, state: _WorkState) -> None:
    if isinstance(stmt, ast.VarDecl):
        if stmt.array_size is not None:
            size = int(_eval(stmt.array_size, env, state))
            fill = 0 if stmt.type_name == "int" else 0.0
            env.set(stmt.name, [fill] * size)
        else:
            value = _eval(stmt.init, env, state) if stmt.init is not None \
                else (0 if stmt.type_name == "int" else 0.0)
            if stmt.type_name == "int":
                value = int(value)
            env.set(stmt.name, value)
    elif isinstance(stmt, ast.Assign):
        value = _eval(stmt.value, env, state)
        if stmt.op != "=":
            current = _eval(stmt.target, env, state)
            op = stmt.op[0]
            value = _apply_binop(op, current, value)
        _store(stmt.target, value, env, state)
    elif isinstance(stmt, ast.PushStmt):
        state.pushed.append(_eval(stmt.value, env, state))
    elif isinstance(stmt, ast.PopStmt):
        state.pop()
    elif isinstance(stmt, ast.ExprStmt):
        _eval(stmt.expr, env, state)
    elif isinstance(stmt, ast.IfStmt):
        if _eval(stmt.condition, env, state):
            _exec_block(stmt.then_body, env, state)
        else:
            _exec_block(stmt.else_body, env, state)
    elif isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            _exec(stmt.init, env, state)
        steps = 0
        while stmt.condition is None or _eval(stmt.condition, env, state):
            _exec_block(stmt.body, env, state)
            if stmt.update is not None:
                _exec(stmt.update, env, state)
            steps += 1
            if steps > _MAX_LOOP_STEPS:
                raise SemanticError("runaway for loop in work body")
    elif isinstance(stmt, ast.WhileStmt):
        steps = 0
        while _eval(stmt.condition, env, state):
            _exec_block(stmt.body, env, state)
            steps += 1
            if steps > _MAX_LOOP_STEPS:
                raise SemanticError("runaway while loop in work body")
    else:
        raise SemanticError(f"unknown statement {type(stmt).__name__}")


def _store(target, value, env: _Env, state: _WorkState) -> None:
    if isinstance(target, ast.Name):
        env.set(target.ident, value)
    elif isinstance(target, ast.Index):
        base = _eval(target.base, env, state)
        index = int(_eval(target.index, env, state))
        if not isinstance(base, list):
            raise SemanticError("indexed assignment into a non-array")
        if not 0 <= index < len(base):
            raise SemanticError(
                f"array index {index} out of bounds [0, {len(base)})")
        base[index] = value
    else:
        raise SemanticError("invalid assignment target")


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------
def _eval(expr, env: _Env, state: _WorkState):
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
        return expr.value
    if isinstance(expr, ast.Name):
        return env.get(expr.ident)
    if isinstance(expr, ast.Index):
        base = _eval(expr.base, env, state)
        index = int(_eval(expr.index, env, state))
        if not isinstance(base, list):
            raise SemanticError("indexing a non-array value")
        if not 0 <= index < len(base):
            raise SemanticError(
                f"array index {index} out of bounds [0, {len(base)})")
        return base[index]
    if isinstance(expr, ast.Unary):
        value = _eval(expr.operand, env, state)
        return -value if expr.op == "-" else (not value)
    if isinstance(expr, ast.Binary):
        if expr.op == "&&":
            return bool(_eval(expr.left, env, state)) and \
                bool(_eval(expr.right, env, state))
        if expr.op == "||":
            return bool(_eval(expr.left, env, state)) or \
                bool(_eval(expr.right, env, state))
        left = _eval(expr.left, env, state)
        right = _eval(expr.right, env, state)
        return _apply_binop(expr.op, left, right)
    if isinstance(expr, ast.Call):
        fn = INTRINSICS.get(expr.func)
        if fn is None:
            raise SemanticError(f"unknown function {expr.func!r}")
        args = [_eval(a, env, state) for a in expr.args]
        return fn(*args)
    if isinstance(expr, ast.PeekExpr):
        return state.peek(int(_eval(expr.depth, env, state)))
    if isinstance(expr, ast.PopExpr):
        return state.pop()
    raise SemanticError(f"unknown expression {type(expr).__name__}")


def _apply_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise SemanticError("integer division by zero")
            return left // right if (left >= 0) == (right >= 0) \
                else -((-left) // right) if left < 0 else -(left // (-right))
        if right == 0:
            raise SemanticError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise SemanticError("modulo by zero")
        return math.fmod(left, right) if isinstance(left, float) \
            or isinstance(right, float) else int(math.fmod(left, right))
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    raise SemanticError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# CUDA emission
# ---------------------------------------------------------------------------
def work_body_to_cuda(work: ast.WorkDecl,
                      params: Mapping[str, object],
                      pop: int, push: int) -> str:
    """Translate a work body to CUDA-C text (C-like pretty printing with
    pop/push rewritten through the layout macros)."""
    emitter = _CudaEmitter(params, pop, push)
    emitter.emit_block(work.body, indent=1)
    return "\n".join(emitter.lines)


def work_body_to_c(work: ast.WorkDecl,
                   params: Mapping[str, object],
                   pop: int, push: int) -> str:
    """Translate a work body to plain C against ring-buffer macros
    (``POP()``, ``PEEK(d)``, ``PUSH(v)``) — the uniprocessor backend."""
    emitter = _CudaEmitter(
        params, pop, push,
        push_template="PUSH({value});",
        pop_template="POP()",
        peek_template="PEEK({depth})",
        pop_stmt_template="(void)POP();",
        preamble=())
    emitter.emit_block(work.body, indent=1)
    return "\n".join(emitter.lines)


class _CudaEmitter:
    _DEFAULT_PUSH = ("out_buf[out_base + PUSH_INDEX(tid, _push_cursor++, "
                     "{rate})] = {value};")
    _DEFAULT_POP = ("in_buf[in_base + POP_INDEX(tid, _pop_cursor++, "
                    "{rate})]")
    _DEFAULT_PEEK = ("in_buf[in_base + POP_INDEX(tid, _pop_cursor + "
                     "{depth}, {rate})]")

    def __init__(self, params: Mapping[str, object], pop: int,
                 push: int, *, push_template: str | None = None,
                 pop_template: str | None = None,
                 peek_template: str | None = None,
                 pop_stmt_template: str = "_pop_cursor++;",
                 preamble: tuple = ("    int _pop_cursor = 0;",
                                    "    int _push_cursor = 0;")) -> None:
        self.params = dict(params)
        self.pop = max(1, pop)
        self.push = max(1, push)
        self.push_template = push_template or self._DEFAULT_PUSH
        self.pop_template = pop_template or self._DEFAULT_POP
        self.peek_template = peek_template or self._DEFAULT_PEEK
        self.pop_stmt_template = pop_stmt_template
        self.lines: list[str] = list(preamble)

    def emit_block(self, stmts, indent: int) -> None:
        for stmt in stmts:
            self.emit(stmt, indent)

    def emit(self, stmt, indent: int) -> None:
        pad = "    " * indent
        if isinstance(stmt, ast.VarDecl):
            ctype = {"int": "int", "float": "float",
                     "boolean": "int"}[stmt.type_name]
            if stmt.array_size is not None:
                self.lines.append(
                    f"{pad}{ctype} {stmt.name}"
                    f"[{self.expr(stmt.array_size)}];")
            elif stmt.init is not None:
                self.lines.append(
                    f"{pad}{ctype} {stmt.name} = {self.expr(stmt.init)};")
            else:
                self.lines.append(f"{pad}{ctype} {stmt.name};")
        elif isinstance(stmt, ast.Assign):
            self.lines.append(
                f"{pad}{self.expr(stmt.target)} {stmt.op} "
                f"{self.expr(stmt.value)};")
        elif isinstance(stmt, ast.PushStmt):
            self.lines.append(
                pad + self.push_template.format(
                    rate=self.push, value=self.expr(stmt.value)))
        elif isinstance(stmt, ast.PopStmt):
            self.lines.append(pad + self.pop_stmt_template)
        elif isinstance(stmt, ast.ExprStmt):
            self.lines.append(f"{pad}{self.expr(stmt.expr)};")
        elif isinstance(stmt, ast.IfStmt):
            self.lines.append(f"{pad}if ({self.expr(stmt.condition)}) {{")
            self.emit_block(stmt.then_body, indent + 1)
            if stmt.else_body:
                self.lines.append(f"{pad}}} else {{")
                self.emit_block(stmt.else_body, indent + 1)
            self.lines.append(f"{pad}}}")
        elif isinstance(stmt, ast.ForStmt):
            init = self.stmt_inline(stmt.init) if stmt.init else ""
            cond = self.expr(stmt.condition) if stmt.condition else ""
            update = self.stmt_inline(stmt.update) if stmt.update else ""
            self.lines.append(f"{pad}for ({init}; {cond}; {update}) {{")
            self.emit_block(stmt.body, indent + 1)
            self.lines.append(f"{pad}}}")
        elif isinstance(stmt, ast.WhileStmt):
            self.lines.append(f"{pad}while ({self.expr(stmt.condition)}) {{")
            self.emit_block(stmt.body, indent + 1)
            self.lines.append(f"{pad}}}")

    def stmt_inline(self, stmt) -> str:
        if isinstance(stmt, ast.VarDecl):
            ctype = {"int": "int", "float": "float",
                     "boolean": "int"}[stmt.type_name]
            init = f" = {self.expr(stmt.init)}" if stmt.init else ""
            return f"{ctype} {stmt.name}{init}"
        if isinstance(stmt, ast.Assign):
            return (f"{self.expr(stmt.target)} {stmt.op} "
                    f"{self.expr(stmt.value)}")
        return ""

    def expr(self, expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.FloatLit):
            return f"{expr.value!r}f"
        if isinstance(expr, ast.BoolLit):
            return "1" if expr.value else "0"
        if isinstance(expr, ast.Name):
            if expr.ident in self.params:
                value = self.params[expr.ident]
                return f"{value!r}f" if isinstance(value, float) \
                    else str(value)
            return expr.ident
        if isinstance(expr, ast.Index):
            return f"{self.expr(expr.base)}[{self.expr(expr.index)}]"
        if isinstance(expr, ast.Unary):
            return f"({expr.op}{self.expr(expr.operand)})"
        if isinstance(expr, ast.Binary):
            return (f"({self.expr(expr.left)} {expr.op} "
                    f"{self.expr(expr.right)})")
        if isinstance(expr, ast.Call):
            args = ", ".join(self.expr(a) for a in expr.args)
            func = {"abs": "fabsf", "min": "fminf", "max": "fmaxf",
                    "sin": "__sinf", "cos": "__cosf",
                    "sqrt": "sqrtf", "atan": "atanf",
                    "exp": "__expf", "log": "__logf",
                    "pow": "__powf"}.get(expr.func, expr.func)
            return f"{func}({args})"
        if isinstance(expr, ast.PeekExpr):
            return self.peek_template.format(
                depth=self.expr(expr.depth), rate=self.pop)
        if isinstance(expr, ast.PopExpr):
            return self.pop_template.format(rate=self.pop)
        raise SemanticError(f"cannot emit {type(expr).__name__}")
