"""AST node definitions for the StreamIt-like language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class Name:
    ident: str


@dataclass(frozen=True)
class Index:
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Unary:
    op: str           # '-', '!'
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str           # + - * / % < <= > >= == != && ||
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call:
    func: str         # math intrinsics: sin cos sqrt atan abs min max ...
    args: tuple


@dataclass(frozen=True)
class PeekExpr:
    depth: "Expr"


@dataclass(frozen=True)
class PopExpr:
    pass


Expr = Union[IntLit, FloatLit, BoolLit, Name, Index, Unary, Binary, Call,
             PeekExpr, PopExpr]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class VarDecl:
    type_name: str            # 'int' | 'float' | 'boolean'
    name: str
    array_size: Optional[Expr]
    init: Optional[Expr]


@dataclass(frozen=True)
class Assign:
    target: Expr              # Name or Index
    op: str                   # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass(frozen=True)
class PushStmt:
    value: Expr


@dataclass(frozen=True)
class PopStmt:
    """A bare ``pop();`` discarding the token."""


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr


@dataclass(frozen=True)
class IfStmt:
    condition: Expr
    then_body: tuple
    else_body: tuple


@dataclass(frozen=True)
class ForStmt:
    init: Optional["Stmt"]
    condition: Optional[Expr]
    update: Optional["Stmt"]
    body: tuple


@dataclass(frozen=True)
class WhileStmt:
    condition: Expr
    body: tuple


Stmt = Union[VarDecl, Assign, PushStmt, PopStmt, ExprStmt, IfStmt,
             ForStmt, WhileStmt]


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Param:
    type_name: str
    name: str


@dataclass(frozen=True)
class StreamType:
    input: str                # 'void' | 'int' | 'float' | 'boolean'
    output: str


@dataclass(frozen=True)
class WorkDecl:
    pop: Expr
    push: Expr
    peek: Optional[Expr]
    body: tuple               # of Stmt


@dataclass(frozen=True)
class FilterDecl:
    name: str
    stream_type: StreamType
    params: tuple             # of Param
    work: WorkDecl
    #: Persistent per-instance state: field declarations plus the
    #: ``init`` block that seeds them.  A filter with fields is
    #: *stateful* (paper Section II-B) and is scheduled through the
    #: serializing extension.
    fields: tuple = ()        # of VarDecl
    init_body: tuple = ()     # of Stmt

    @property
    def is_stateful(self) -> bool:
        return bool(self.fields)


@dataclass(frozen=True)
class AddStmt:
    stream_name: str
    args: tuple               # of Expr


@dataclass(frozen=True)
class SplitDecl:
    kind: str                 # 'duplicate' | 'roundrobin'
    weights: tuple            # of Expr (empty for duplicate / default rr)


@dataclass(frozen=True)
class JoinDecl:
    weights: tuple


@dataclass(frozen=True)
class PipelineDecl:
    name: str
    stream_type: StreamType
    params: tuple
    adds: tuple               # of AddStmt


@dataclass(frozen=True)
class SplitJoinDecl:
    name: str
    stream_type: StreamType
    params: tuple
    split: SplitDecl
    adds: tuple
    join: JoinDecl


@dataclass(frozen=True)
class FeedbackLoopDecl:
    name: str
    stream_type: StreamType
    params: tuple
    join: JoinDecl
    body: AddStmt
    loop: AddStmt
    split: SplitDecl
    enqueue: tuple            # of Expr


Decl = Union[FilterDecl, PipelineDecl, SplitJoinDecl, FeedbackLoopDecl]


@dataclass(frozen=True)
class Program:
    declarations: tuple       # of Decl

    def find(self, name: str) -> Decl:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        raise KeyError(name)
