"""Recursive-descent parser for the StreamIt-like language.

Grammar (EBNF-ish)::

    program       := decl*
    decl          := stream_type kind IDENT '(' params? ')' '{' ... '}'
    stream_type   := type '->' type
    kind          := 'filter' | 'pipeline' | 'splitjoin' | 'feedbackloop'
    filter body   := 'work' rates block
    rates         := ('pop' expr)? ('push' expr)? ('peek' expr)?
    pipeline body := add*
    splitjoin body:= split add* join
    feedback body := join body_add loop_add split enqueue*
    add           := 'add' IDENT '(' args? ')' ';'
    split         := 'split' ('duplicate' | 'roundrobin' '(' args? ')') ';'
    join          := 'join' 'roundrobin' '(' args? ')' ';'

Statements and expressions are the usual C subset (decls, assignment,
``for``/``while``/``if``, arithmetic, comparisons, logic, calls), plus
the stream primitives ``pop()``, ``peek(e)`` and ``push(e)``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import Token, TokenType, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}
_TYPE_NAMES = {"int", "float", "boolean", "void"}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (found {tok.value!r})",
                          tok.line, tok.column)

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def check(self, value: str) -> bool:
        return self.current.value == value and self.current.type in (
            TokenType.KEYWORD, TokenType.SYMBOL)

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            raise self._error(f"expected {value!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.type is not TokenType.IDENT:
            raise self._error("expected an identifier")
        return self.advance().value

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls = []
        while self.current.type is not TokenType.EOF:
            decls.append(self.parse_declaration())
        return ast.Program(tuple(decls))

    def parse_declaration(self) -> ast.Decl:
        stream_type = self.parse_stream_type()
        if self.accept("filter"):
            return self.parse_filter(stream_type)
        if self.accept("pipeline"):
            return self.parse_pipeline(stream_type)
        if self.accept("splitjoin"):
            return self.parse_splitjoin(stream_type)
        if self.accept("feedbackloop"):
            return self.parse_feedbackloop(stream_type)
        raise self._error("expected filter/pipeline/splitjoin/feedbackloop")

    def parse_stream_type(self) -> ast.StreamType:
        left = self.parse_type_name()
        self.expect("->")
        right = self.parse_type_name()
        return ast.StreamType(left, right)

    def parse_type_name(self) -> str:
        if self.current.value in _TYPE_NAMES and \
                self.current.type is TokenType.KEYWORD:
            return self.advance().value
        raise self._error("expected a type name")

    def parse_params(self) -> tuple:
        self.expect("(")
        params = []
        while not self.check(")"):
            type_name = self.parse_type_name()
            name = self.expect_ident()
            params.append(ast.Param(type_name, name))
            if not self.check(")"):
                self.expect(",")
        self.expect(")")
        return tuple(params)

    def parse_filter(self, stream_type: ast.StreamType) -> ast.FilterDecl:
        name = self.expect_ident()
        params = self.parse_params()
        self.expect("{")
        fields: list[ast.VarDecl] = []
        init_body: tuple = ()
        # Optional state: field declarations, then an init block.
        while self.current.value in ("int", "float", "boolean") and \
                self.current.type is TokenType.KEYWORD:
            fields.append(self.parse_var_decl())
            self.expect(";")
        if self.current.type is TokenType.IDENT and \
                self.current.value == "init":
            self.advance()
            init_body = self.parse_block()
        work = self.parse_work()
        self.expect("}")
        return ast.FilterDecl(name, stream_type, params, work,
                              fields=tuple(fields),
                              init_body=init_body)

    def parse_work(self) -> ast.WorkDecl:
        self.expect("work")
        pop = ast.IntLit(0)
        push = ast.IntLit(0)
        peek: Optional[ast.Expr] = None
        while True:
            if self.accept("pop"):
                pop = self.parse_expression()
            elif self.accept("push"):
                push = self.parse_expression()
            elif self.accept("peek"):
                peek = self.parse_expression()
            else:
                break
        body = self.parse_block()
        return ast.WorkDecl(pop=pop, push=push, peek=peek, body=body)

    def parse_pipeline(self,
                       stream_type: ast.StreamType) -> ast.PipelineDecl:
        name = self.expect_ident()
        params = self.parse_params()
        self.expect("{")
        adds = []
        while not self.check("}"):
            adds.append(self.parse_add())
        self.expect("}")
        return ast.PipelineDecl(name, stream_type, params, tuple(adds))

    def parse_splitjoin(self,
                        stream_type: ast.StreamType) -> ast.SplitJoinDecl:
        name = self.expect_ident()
        params = self.parse_params()
        self.expect("{")
        split = self.parse_split()
        adds = []
        while self.check("add"):
            adds.append(self.parse_add())
        join = self.parse_join()
        self.expect("}")
        return ast.SplitJoinDecl(name, stream_type, params, split,
                                 tuple(adds), join)

    def parse_feedbackloop(
            self, stream_type: ast.StreamType) -> ast.FeedbackLoopDecl:
        name = self.expect_ident()
        params = self.parse_params()
        self.expect("{")
        join = self.parse_join()
        self.expect("body")
        body = self.parse_add()
        self.expect("loop")
        loop = self.parse_add()
        split = self.parse_split()
        enqueue = []
        while self.accept("enqueue"):
            enqueue.append(self.parse_expression())
            self.expect(";")
        self.expect("}")
        return ast.FeedbackLoopDecl(name, stream_type, params, join,
                                    body, loop, split, tuple(enqueue))

    def parse_add(self) -> ast.AddStmt:
        self.expect("add")
        name = self.expect_ident()
        args = self.parse_call_args()
        self.expect(";")
        return ast.AddStmt(name, args)

    def parse_split(self) -> ast.SplitDecl:
        self.expect("split")
        if self.accept("duplicate"):
            self.expect(";")
            return ast.SplitDecl("duplicate", ())
        self.expect("roundrobin")
        weights = self.parse_call_args()
        self.expect(";")
        return ast.SplitDecl("roundrobin", weights)

    def parse_join(self) -> ast.JoinDecl:
        self.expect("join")
        self.expect("roundrobin")
        weights = self.parse_call_args()
        self.expect(";")
        return ast.JoinDecl(weights)

    def parse_call_args(self) -> tuple:
        self.expect("(")
        args = []
        while not self.check(")"):
            args.append(self.parse_expression())
            if not self.check(")"):
                self.expect(",")
        self.expect(")")
        return tuple(args)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_block(self) -> tuple:
        self.expect("{")
        stmts = []
        while not self.check("}"):
            stmts.append(self.parse_statement())
        self.expect("}")
        return tuple(stmts)

    def parse_statement(self) -> ast.Stmt:
        if self.current.value in ("int", "float", "boolean") and \
                self.current.type is TokenType.KEYWORD:
            stmt = self.parse_var_decl()
            self.expect(";")
            return stmt
        if self.accept("if"):
            return self.parse_if()
        if self.accept("for"):
            return self.parse_for()
        if self.accept("while"):
            return self.parse_while()
        if self.accept("push"):
            self.expect("(")
            value = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.PushStmt(value)
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_var_decl(self) -> ast.VarDecl:
        type_name = self.advance().value
        name = self.expect_ident()
        array_size = None
        if self.accept("["):
            array_size = self.parse_expression()
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_expression()
        return ast.VarDecl(type_name, name, array_size, init)

    def parse_if(self) -> ast.IfStmt:
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        then_body = self.parse_block() if self.check("{") \
            else (self.parse_statement(),)
        else_body: tuple = ()
        if self.accept("else"):
            else_body = self.parse_block() if self.check("{") \
                else (self.parse_statement(),)
        return ast.IfStmt(condition, then_body, else_body)

    def parse_for(self) -> ast.ForStmt:
        self.expect("(")
        init = None
        if not self.check(";"):
            if self.current.value in ("int", "float") and \
                    self.current.type is TokenType.KEYWORD:
                init = self.parse_var_decl()
            else:
                init = self.parse_simple_statement()
        self.expect(";")
        condition = None if self.check(";") else self.parse_expression()
        self.expect(";")
        update = None if self.check(")") else self.parse_simple_statement()
        self.expect(")")
        body = self.parse_block() if self.check("{") \
            else (self.parse_statement(),)
        return ast.ForStmt(init, condition, update, body)

    def parse_while(self) -> ast.WhileStmt:
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        body = self.parse_block() if self.check("{") \
            else (self.parse_statement(),)
        return ast.WhileStmt(condition, body)

    def parse_simple_statement(self) -> ast.Stmt:
        if self.check("pop"):
            # bare pop();
            self.advance()
            self.expect("(")
            self.expect(")")
            return ast.PopStmt()
        expr = self.parse_expression()
        if self.current.value in _ASSIGN_OPS and \
                self.current.type is TokenType.SYMBOL:
            op = self.advance().value
            value = self.parse_expression()
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise self._error("invalid assignment target")
            return ast.Assign(expr, op, value)
        if self.current.value in ("++", "--"):
            op = self.advance().value
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise self._error("invalid increment target")
            delta = ast.IntLit(1)
            return ast.Assign(expr, "+=" if op == "++" else "-=", delta)
        return ast.ExprStmt(expr)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expression(self, level: int = 0) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        left = self.parse_expression(level + 1)
        while self.current.type is TokenType.SYMBOL and \
                self.current.value in ops:
            op = self.advance().value
            right = self.parse_expression(level + 1)
            left = ast.Binary(op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.current.type is TokenType.SYMBOL and \
                self.current.value in ("-", "!"):
            op = self.advance().value
            return ast.Unary(op, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.accept("["):
            index = self.parse_expression()
            self.expect("]")
            expr = ast.Index(expr, index)
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.type is TokenType.INT:
            self.advance()
            return ast.IntLit(int(tok.value))
        if tok.type is TokenType.FLOAT:
            self.advance()
            return ast.FloatLit(float(tok.value))
        if self.accept("true"):
            return ast.BoolLit(True)
        if self.accept("false"):
            return ast.BoolLit(False)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if self.accept("pop"):
            self.expect("(")
            self.expect(")")
            return ast.PopExpr()
        if self.accept("peek"):
            self.expect("(")
            depth = self.parse_expression()
            self.expect(")")
            return ast.PeekExpr(depth)
        if tok.type is TokenType.IDENT:
            name = self.advance().value
            if self.check("("):
                args = self.parse_call_args()
                return ast.Call(name, args)
            return ast.Name(name)
        raise self._error("expected an expression")


def parse_program(source: str) -> ast.Program:
    """Parse a whole source file into an AST."""
    return Parser(source).parse_program()
