"""Elaboration: instantiate the AST into graph-IR stream structures.

Mirrors StreamIt's elaboration: stream declarations are *templates*
parameterized by compile-time arguments; ``add`` statements instantiate
them recursively from a root (conventionally ``Main``).  Filter work
bodies are compiled to Python closures (for execution) and to CUDA text
(for code generation); rates are evaluated in the parameter
environment, so multi-rate graphs parameterized by ``N`` elaborate to
concrete SDF rates exactly like the benchmarks in the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import SemanticError
from ..graph.flatten import flatten as flatten_graph
from ..graph.graph import StreamGraph
from ..graph.nodes import Filter, default_estimate
from ..graph.structures import FeedbackLoop, Pipeline, SplitJoin
from . import ast
from .interp import (
    WorkAstSpec,
    compile_stateful_work_function,
    compile_work_function,
    evaluate_const,
    work_body_to_c,
    work_body_to_cuda,
)
from .parser import parse_program


def elaborate(program: ast.Program, root: str = "Main",
              args: Sequence = ()) -> object:
    """Instantiate ``root`` with ``args`` into a stream-element tree."""
    try:
        decl = program.find(root)
    except KeyError:
        known = [d.name for d in program.declarations]
        raise SemanticError(
            f"no stream named {root!r}; declared: {known}") from None
    return _instantiate(program, decl, list(args), path=root)


def build_graph(source: str, root: str = "Main",
                args: Sequence = ()) -> StreamGraph:
    """Parse, type-check, elaborate and flatten a program in one call."""
    from .sema import analyze_program

    program = parse_program(source)
    analyze_program(program)
    element = elaborate(program, root, args)
    return flatten_graph(element, name=root.lower())


# ---------------------------------------------------------------------------
def _instantiate(program: ast.Program, decl, args: list, path: str):
    params = _bind_params(decl, args, path)
    if isinstance(decl, ast.FilterDecl):
        return _make_filter(decl, params, path)
    if isinstance(decl, ast.PipelineDecl):
        children = [_child(program, add, params, f"{path}.{i}")
                    for i, add in enumerate(decl.adds)]
        return Pipeline(children, name=path)
    if isinstance(decl, ast.SplitJoinDecl):
        branches = [_child(program, add, params, f"{path}.{i}")
                    for i, add in enumerate(decl.adds)]
        split = _split_spec(decl.split, params, len(branches), path)
        join = [int(evaluate_const(w, params)) for w in decl.join.weights]
        if len(join) == 1 and len(branches) > 1:
            join = join * len(branches)
        return SplitJoin(branches, split=split, join=join or None,
                         name=path)
    if isinstance(decl, ast.FeedbackLoopDecl):
        body = _child(program, decl.body, params, f"{path}.body")
        loop = _child(program, decl.loop, params, f"{path}.loop")
        join_weights = [int(evaluate_const(w, params))
                        for w in decl.join.weights]
        split_weights = [int(evaluate_const(w, params))
                         for w in decl.split.weights]
        if decl.split.kind != "roundrobin":
            raise SemanticError(
                f"{path}: feedback loop splitters must be roundrobin")
        tokens = [evaluate_const(e, params) for e in decl.enqueue]
        return FeedbackLoop(body, loop, join_weights=join_weights,
                            split_weights=split_weights,
                            initial_tokens=tokens, name=path)
    raise SemanticError(f"cannot instantiate {type(decl).__name__}")


def _child(program: ast.Program, add: ast.AddStmt,
           params: Mapping[str, object], path: str):
    try:
        decl = program.find(add.stream_name)
    except KeyError:
        raise SemanticError(
            f"{path}: unknown stream {add.stream_name!r}") from None
    args = [evaluate_const(a, params) for a in add.args]
    return _instantiate(program, decl, args, f"{path}:{add.stream_name}")


def _bind_params(decl, args: list, path: str) -> dict:
    if len(args) != len(decl.params):
        raise SemanticError(
            f"{path}: {decl.name} expects {len(decl.params)} arguments, "
            f"got {len(args)}")
    bound = {}
    for param, value in zip(decl.params, args):
        if param.type_name == "int":
            value = int(value)
        elif param.type_name == "float":
            value = float(value)
        bound[param.name] = value
    return bound


def _make_filter(decl: ast.FilterDecl, params: Mapping[str, object],
                 path: str) -> Filter:
    pop = int(evaluate_const(decl.work.pop, params))
    push = int(evaluate_const(decl.work.push, params))
    peek = pop
    if decl.work.peek is not None:
        peek = int(evaluate_const(decl.work.peek, params))
    if decl.stream_type.input == "void" and pop:
        raise SemanticError(f"{path}: a void-input filter cannot pop")
    if decl.stream_type.output == "void" and push:
        raise SemanticError(f"{path}: a void-output filter cannot push")
    if decl.is_stateful:
        work = compile_stateful_work_function(
            decl.fields, decl.init_body, decl.work, params, pop, push,
            max(peek, pop))
    else:
        work = compile_work_function(decl.work, params, pop, push,
                                     max(peek, pop))
    node = Filter(decl.name, pop=pop, push=push, peek=max(peek, pop),
                  work=work,
                  estimate=default_estimate(pop, push, max(peek, pop)),
                  stateful=decl.is_stateful)
    node.cuda_body = work_body_to_cuda(decl.work, params, pop, push)
    node.c_body = work_body_to_c(decl.work, params, pop, push)
    if not decl.is_stateful:
        # Stateless filters expose their checked AST so repro.exec can
        # re-lower the body; stateful bodies keep their field state in
        # the interpreter closure and are never re-lowered.
        node.work_ast = WorkAstSpec(work=decl.work, params=dict(params),
                                    pop=pop, push=push,
                                    peek=max(peek, pop))
    return node


def _split_spec(split: ast.SplitDecl, params: Mapping[str, object],
                branches: int, path: str):
    if split.kind == "duplicate":
        return "duplicate"
    weights = [int(evaluate_const(w, params)) for w in split.weights]
    if len(weights) == 1 and branches > 1:
        weights = weights * branches
    if len(weights) != branches:
        raise SemanticError(
            f"{path}: {len(weights)} split weights for {branches} "
            f"branches")
    return weights
