"""GPU substrate: a G80-class device model and analytic simulator.

The paper's evaluation hardware (GeForce 8800 GTS 512) is reproduced as
an explicit architectural model — SM/warp structure, occupancy rules,
half-warp coalescing, shared-memory banks, bus bandwidth with cross-SM
contention, and kernel launch overhead — so generated schedules can be
timed without the physical card.
"""

from .device import (
    GEFORCE_8600_GTS,
    GEFORCE_8800_GTS_512,
    GEFORCE_8800_GTX,
    PROFILE_REGISTER_BUDGETS,
    PROFILE_THREAD_COUNTS,
    DeviceConfig,
)
from .memory import (
    AccessSpec,
    CoalescingReport,
    analyze_access_pattern,
    analyze_half_warp,
    shared_bank_conflict_degree,
    transactions_for_filter_access,
)
from .occupancy import (
    Occupancy,
    compute_occupancy,
    config_is_feasible,
    spill_registers,
)
from .simulator import FilterWork, GpuSimulator, Kernel, KernelResult, RunResult
from .timing import FilterTiming, estimate_filter_cycles

__all__ = [
    "AccessSpec",
    "CoalescingReport",
    "DeviceConfig",
    "FilterTiming",
    "FilterWork",
    "GEFORCE_8600_GTS",
    "GEFORCE_8800_GTS_512",
    "GEFORCE_8800_GTX",
    "GpuSimulator",
    "Kernel",
    "KernelResult",
    "Occupancy",
    "PROFILE_REGISTER_BUDGETS",
    "PROFILE_THREAD_COUNTS",
    "RunResult",
    "analyze_access_pattern",
    "analyze_half_warp",
    "compute_occupancy",
    "config_is_feasible",
    "estimate_filter_cycles",
    "shared_bank_conflict_degree",
    "spill_registers",
    "transactions_for_filter_access",
]
