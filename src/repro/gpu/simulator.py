"""Kernel-level GPU simulator.

Executes *kernels* — per-SM sequences of filter work items — against the
analytic SM timing model, adding the device-level effects the schedules
compete on:

* **global-bus contention**: the event-driven processor-sharing model
  of :mod:`repro.gpu.bus`, including the DRAM row-locality penalty for
  concurrent wide scatter movers, and
* **kernel launch overhead**: every invocation pays the CUDA dispatch
  cost, which is what SWPn coarsening amortizes.

The software-pipelined kernel of the paper is exactly one
:class:`Kernel` here: a switch over SMs, each SM running its assigned
filter instances back to back, with one invocation per steady-state
iteration (cross-SM data becomes visible at the invocation boundary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .. import faults, obs
from ..errors import GpuSmFault, SimulationError
from ..graph.nodes import WorkEstimate
from .bus import BusItem, simulate_shared_bus
from .device import DeviceConfig
from .timing import FilterTiming, estimate_filter_cycles


@dataclass(frozen=True)
class FilterWork:
    """One filter execution slot inside a kernel, on a single SM.

    ``stream_label`` identifies the underlying filter (instances of one
    filter share it) and ``scatter_streams`` marks wide data movers for
    the DRAM-locality model — see :class:`repro.gpu.bus.BusItem`.
    """

    name: str
    estimate: WorkEstimate
    threads: int
    register_cap: Optional[int] = None
    coalesced: bool = True
    use_shared_staging: bool = False
    repeat: int = 1
    stream_label: str = ""
    scatter_streams: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise SimulationError(f"{self.name}: threads must be >= 1")
        if self.repeat < 1:
            raise SimulationError(f"{self.name}: repeat must be >= 1")


#: Port count from which a pure data mover counts as a DRAM "scatter"
#: pattern (an 8-way splitter/joiner touches 9 buffers at once).
SCATTER_PORT_THRESHOLD = 6


def scatter_streams_of(node) -> int:
    """Wide-mover stream count for a graph node (0 for compute filters
    and narrow movers)."""
    ports = node.num_inputs + node.num_outputs
    if node.is_data_movement and ports >= SCATTER_PORT_THRESHOLD:
        return ports
    return 0


@dataclass
class Kernel:
    """A kernel invocation: one work list per SM (empty lists allowed)."""

    name: str
    sm_programs: list[list[FilterWork]]

    def __post_init__(self) -> None:
        if not self.sm_programs:
            raise SimulationError(f"kernel {self.name} has no SM programs")

    @property
    def active_sms(self) -> int:
        return sum(1 for program in self.sm_programs if program)

    @classmethod
    def uniform(cls, name: str, work: FilterWork, num_sms: int) -> "Kernel":
        """The data-parallel case: the same work on every SM."""
        return cls(name, [[work] for _ in range(num_sms)])


@dataclass(frozen=True)
class KernelResult:
    """Timing of one kernel invocation (launch overhead not included)."""

    kernel_name: str
    cycles: float
    per_sm_cycles: tuple[float, ...]
    bytes_moved: int
    bandwidth_bound: bool
    contention_fraction: float = 0.0

    @property
    def critical_sm(self) -> int:
        return max(range(len(self.per_sm_cycles)),
                   key=lambda i: self.per_sm_cycles[i])


@dataclass(frozen=True)
class RunResult:
    """Timing of a complete program execution on the GPU."""

    total_cycles: float
    kernel_cycles: float
    launch_cycles: float
    invocations: int

    def seconds(self, device: DeviceConfig) -> float:
        return device.cycles_to_seconds(self.total_cycles)


class GpuSimulator:
    """Analytic simulator for a G80-class device."""

    def __init__(self, device: DeviceConfig) -> None:
        self.device = device

    # ------------------------------------------------------------------
    def simulate_kernel(self, kernel: Kernel) -> KernelResult:
        """Cycles for one invocation of ``kernel``.

        Each SM executes its work items sequentially; SMs run
        concurrently and contend for the memory bus, which is modeled
        with the event-driven processor-sharing simulation of
        :mod:`repro.gpu.bus`.  Each item contributes a non-bus phase
        (its compute/latency bound at full occupancy) followed by its
        device-memory traffic.
        """
        if len(kernel.sm_programs) > self.device.num_sms:
            raise SimulationError(
                f"kernel {kernel.name} targets {len(kernel.sm_programs)} "
                f"SMs; device has {self.device.num_sms}")
        if kernel.active_sms == 0:
            return KernelResult(kernel.name, 0.0,
                                tuple(0.0 for _ in kernel.sm_programs),
                                0, False)
        telemetry = obs.is_enabled()
        per_sm_items: list[list[BusItem]] = []
        total_bytes = 0
        for program in kernel.sm_programs:
            items = []
            for item in program:
                timing = self._time_item(item, share=1.0)
                if math.isinf(timing.cycles):
                    raise SimulationError(
                        f"work item {item.name} cannot launch: "
                        f"{timing.occupancy.limiting_factor} limit")
                non_bus = max(timing.compute_cycles,
                              timing.latency_cycles) \
                    + self.device.firing_overhead_cycles
                items.append(BusItem(
                    compute_cycles=non_bus,
                    bytes=float(timing.bytes_moved),
                    repeat=item.repeat,
                    label=item.stream_label or item.name,
                    scatter_streams=item.scatter_streams))
                total_bytes += timing.bytes_moved * item.repeat
                if telemetry:
                    self._record_item(item, timing)
            per_sm_items.append(items)
        result = simulate_shared_bus(
            per_sm_items, self.device.mem_bandwidth_bytes_per_cycle)
        total_cycles, finish_times = self._apply_sm_faults(
            kernel, result.total_cycles, result.finish_times)
        bandwidth_floor = total_bytes \
            / self.device.mem_bandwidth_bytes_per_cycle
        if telemetry:
            self._record_kernel(kernel, result, total_bytes)
        return KernelResult(
            kernel.name, total_cycles, finish_times,
            total_bytes,
            bandwidth_bound=bandwidth_floor >= 0.5 * total_cycles,
            contention_fraction=result.contention_fraction)

    def _apply_sm_faults(self, kernel: Kernel, total_cycles: float,
                         finish_times: tuple[float, ...]
                         ) -> tuple[float, tuple[float, ...]]:
        """Simulated per-SM errors (the ``gpu.sm_error`` fault site).

        A faulted SM relaunches its whole program — the paper's
        execution model has no finer-grained recovery unit than a
        kernel's per-SM work list — so every retry adds that SM's
        original finish time to its cycles.  An error persisting past
        the ``gpu.retries`` relaunch budget escapes as a typed
        :class:`~repro.errors.GpuSmFault`: timing degrades gracefully,
        correctness failures never do.
        """
        if not faults.is_active():
            return total_cycles, finish_times
        spec = faults.active()
        retries = int(spec.param("gpu.retries"))
        finish = list(finish_times)
        for sm, program in enumerate(kernel.sm_programs):
            if not program or sm >= len(finish):
                continue
            key = f"{kernel.name}:{sm}"
            penalty = finish[sm]
            hits = 0
            while faults.should("gpu.sm_error", key, hits):
                hits += 1
                if hits > retries:
                    raise GpuSmFault(
                        f"SM {sm} failed {hits} consecutive relaunches "
                        f"of kernel {kernel.name!r}",
                        kernel=kernel.name, sm=sm)
                faults.count_retry("gpu.sm_error")
                finish[sm] += penalty
                if obs.is_enabled():
                    obs.counter("gpu.sm_relaunches", sm=sm).add(1)
            total_cycles = max(total_cycles, finish[sm])
        return total_cycles, tuple(finish)

    # ------------------------------------------------------------------
    # observability accumulation (only reached while obs is enabled)
    # ------------------------------------------------------------------
    def _record_item(self, item: FilterWork, timing: FilterTiming) -> None:
        """Per-filter counters for one work item of one invocation."""
        label = item.stream_label or item.name
        obs.counter("gpu.bus.transactions", kind="coalesced") \
            .add(timing.coalesced_transactions * item.repeat)
        obs.counter("gpu.bus.transactions", kind="uncoalesced") \
            .add(timing.uncoalesced_transactions * item.repeat)
        obs.counter("gpu.filter.cycles", filter=label) \
            .add(timing.cycles * item.repeat)
        obs.counter("gpu.filter.bytes", filter=label) \
            .add(timing.bytes_moved * item.repeat)
        obs.histogram("gpu.occupancy.active_warps") \
            .record(timing.occupancy.active_warps)

    def _record_kernel(self, kernel: Kernel, result, total_bytes) -> None:
        """Per-SM counters for one simulated kernel invocation."""
        obs.counter("gpu.kernels.simulated").add(1)
        obs.counter("gpu.bus.bytes").add(total_bytes)
        obs.counter("gpu.bus.busy_cycles").add(result.bus_busy_cycles)
        obs.counter("gpu.bus.contended_cycles") \
            .add(result.contended_cycles)
        for sm, cycles in enumerate(result.finish_times):
            obs.counter("gpu.sm.cycles", sm=sm).add(cycles)
        for sm, wait in enumerate(result.per_sm_mem_wait):
            obs.counter("gpu.sm.stall_cycles", sm=sm).add(wait)

    def _time_item(self, item: FilterWork, share: float) -> FilterTiming:
        return estimate_filter_cycles(
            item.estimate, item.threads, self.device,
            register_cap=item.register_cap,
            coalesced=item.coalesced,
            use_shared_staging=item.use_shared_staging,
            bandwidth_share=share)

    # ------------------------------------------------------------------
    def simulate_run(self, kernels: Sequence[Kernel],
                     invocations: int) -> RunResult:
        """Run the sequence ``kernels``, repeated ``invocations`` times.

        Models a host loop dispatching the kernels in order: every
        dispatch pays the launch overhead (there is no cross-invocation
        overlap on G80 — kernel launches are synchronous events from the
        scheduler's point of view).
        """
        if invocations < 1:
            raise SimulationError("invocations must be >= 1")
        per_round = 0.0
        for kernel in kernels:
            per_round += self.simulate_kernel(kernel).cycles
        launch_per_round = len(kernels) * self.device.kernel_launch_cycles
        total = invocations * (per_round + launch_per_round)
        if obs.is_enabled():
            obs.counter("gpu.launches").add(invocations * len(kernels))
            obs.counter("gpu.launch_cycles") \
                .add(invocations * launch_per_round)
            obs.counter("gpu.run.cycles").add(total)
        return RunResult(total_cycles=total,
                         kernel_cycles=invocations * per_round,
                         launch_cycles=invocations * launch_per_round,
                         invocations=invocations * len(kernels))

    # ------------------------------------------------------------------
    def profile_filter(self, estimate: WorkEstimate, threads: int,
                       register_cap: int, firings: int,
                       coalesced: bool = True,
                       use_shared_staging: bool = False) -> float:
        """The profiling primitive of Fig. 6: run ``firings`` total
        single-threaded-equivalent firings with ``threads`` threads and
        a register cap; return cycles (inf when the config cannot
        launch).

        The profile run executes the filter alone on the device, data
        parallel across all SMs, exactly like the generated profiling
        driver: ``firings/threads`` iterations of the kernel per SM
        chunk.
        """
        if firings % threads:
            raise SimulationError(
                "numfirings must be a multiple of the thread count "
                "(Fig. 6 sets it to a multiple of 128/256/384/512)")
        work = FilterWork("profile", estimate, threads,
                          register_cap=register_cap, coalesced=coalesced,
                          use_shared_staging=use_shared_staging)
        timing = self._time_item(work, share=1.0 / self.device.num_sms)
        if math.isinf(timing.cycles):
            return math.inf
        # The driver spreads iterations over all SMs; each SM therefore
        # executes iterations/num_sms launches of the filter body.
        iterations = firings // threads
        per_sm_iterations = math.ceil(iterations / self.device.num_sms)
        return timing.cycles * per_sm_iterations
