"""Event-driven shared-bus contention model.

The kernel-level simulator needs to know how long a kernel invocation
takes when different SMs execute *different* work lists concurrently —
this is where the paper's "second order effects" live ("joiners and
splitters are bandwidth hungry by nature, since they only move data
around, without any computation", Section V-B).

Each SM executes its items sequentially; an item is a non-bus phase
(compute / latency-bound execution) followed by a memory phase that
must move ``bytes`` over the device bus.  The bus is served
processor-sharing style: at any instant, SMs with outstanding memory
traffic split the bandwidth equally.  This reproduces the qualitative
behaviours the paper observes:

* a lone data-mover overlapped with compute-heavy SMs gets (nearly)
  the full bus — pipelining mixes filter types well;
* a fan-out phase where many SMs hit their data-movement items at the
  same time collapses to aggregate-bandwidth throughput — the DCT /
  MatrixMult "phased" pathology that lets the Serial scheme win there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SimulationError

_EPS = 1e-9


@dataclass(frozen=True)
class BusItem:
    """One work item on one SM: pure-execution cycles, then a memory
    phase moving ``bytes`` over the shared bus.

    ``scatter_streams`` marks wide data-movement items (many-ported
    splitters/joiners): each touches that many distinct buffers at
    once.  One such scatter pattern at a time is DRAM-friendly (the
    partitioned memory controllers interleave it), but *concurrent*
    scatter kernels from different filters thrash row locality and the
    achievable bandwidth drops — the paper's "bandwidth hungry"
    splitter/joiner second-order effect (Section V-B).  ``label``
    identifies the filter: the same filter running on many SMs is one
    coherent access pattern and is counted once.
    """

    compute_cycles: float
    bytes: float
    repeat: int = 1
    label: str = ""
    scatter_streams: int = 0

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.bytes < 0:
            raise SimulationError("bus item phases must be non-negative")
        if self.repeat < 1:
            raise SimulationError("bus item repeat must be >= 1")
        if self.scatter_streams < 0:
            raise SimulationError("scatter_streams must be >= 0")


@dataclass(frozen=True)
class BusResult:
    """Outcome of one contention simulation."""

    finish_times: tuple[float, ...]  # per SM
    total_cycles: float
    bus_busy_cycles: float           # time with >= 1 active memory phase
    contended_cycles: float          # time with >= 2 SMs sharing the bus
    per_sm_mem_wait: tuple[float, ...] = ()  # per-SM memory-phase time

    @property
    def contention_fraction(self) -> float:
        if self.bus_busy_cycles <= 0:
            return 0.0
        return self.contended_cycles / self.bus_busy_cycles


class _SmState:
    __slots__ = ("queue", "index", "rep", "phase", "phase_end",
                 "remaining_bytes", "finish", "mem_wait")

    def __init__(self, queue: Sequence[BusItem]) -> None:
        self.queue = queue
        self.index = 0
        self.rep = 0
        self.phase = "idle"
        self.phase_end = 0.0
        self.remaining_bytes = 0.0
        self.finish = 0.0
        self.mem_wait = 0.0   # cycles spent waiting on the shared bus

    def start_next(self, now: float) -> None:
        """Enter the compute phase of the next (item, repetition)."""
        if self.index >= len(self.queue):
            self.phase = "done"
            self.finish = now
            return
        item = self.queue[self.index]
        self.phase = "compute"
        self.phase_end = now + item.compute_cycles
        self.remaining_bytes = item.bytes

    def advance_rep(self, now: float) -> None:
        item = self.queue[self.index]
        self.rep += 1
        if self.rep >= item.repeat:
            self.rep = 0
            self.index += 1
        self.start_next(now)


def simulate_shared_bus(per_sm_items: Sequence[Sequence[BusItem]],
                        bandwidth_bytes_per_cycle: float,
                        scatter_threshold: int = 8,
                        efficiency_floor: float = 0.55) -> BusResult:
    """Run the processor-sharing bus simulation.

    Returns per-SM finish times; the kernel completes when the last SM
    does.  Runtime is O(total phases x SMs) — phases are filter
    instances, so this is tiny.

    DRAM efficiency: when the *distinct* active scatter items (wide
    movers, see :class:`BusItem`) exceed ``scatter_threshold`` combined
    streams, the deliverable bandwidth scales by
    ``threshold / streams`` (down to ``efficiency_floor``).
    """
    if bandwidth_bytes_per_cycle <= 0:
        raise SimulationError("bandwidth must be positive")
    sms = [_SmState(queue) for queue in per_sm_items]
    now = 0.0
    for sm in sms:
        sm.start_next(now)
    busy = 0.0
    contended = 0.0

    while True:
        computing = [sm for sm in sms if sm.phase == "compute"]
        memory = [sm for sm in sms if sm.phase == "memory"]
        if not computing and not memory:
            break

        bandwidth = bandwidth_bytes_per_cycle
        if memory:
            scatter = {}
            for sm in memory:
                item = sm.queue[sm.index]
                if item.scatter_streams:
                    scatter[item.label or id(item)] = item.scatter_streams
            total_streams = sum(scatter.values())
            # A single scatter pattern — even device-wide, as in the
            # Serial scheme — stays coherent; row thrashing needs at
            # least two *different* wide movers interleaving.
            if len(scatter) >= 2 and total_streams > scatter_threshold:
                efficiency = max(efficiency_floor,
                                 scatter_threshold / total_streams)
                bandwidth *= efficiency

        # Next event: earliest compute completion or earliest memory
        # drain at the current fair share.
        dt = float("inf")
        if computing:
            dt = min(sm.phase_end - now for sm in computing)
        if memory:
            share = bandwidth / len(memory)
            dt = min(dt, min(sm.remaining_bytes / share for sm in memory))
        dt = max(dt, 0.0)

        if memory:
            busy += dt
            if len(memory) >= 2:
                contended += dt
            share = bandwidth / len(memory)
            for sm in memory:
                sm.remaining_bytes -= share * dt
                sm.mem_wait += dt
        now += dt

        for sm in sms:
            if sm.phase == "compute" and sm.phase_end <= now + _EPS:
                if sm.remaining_bytes > _EPS:
                    sm.phase = "memory"
                else:
                    sm.advance_rep(now)
            elif sm.phase == "memory" and sm.remaining_bytes <= _EPS:
                sm.advance_rep(now)

    finish = tuple(sm.finish for sm in sms)
    return BusResult(finish_times=finish,
                     total_cycles=max(finish) if finish else 0.0,
                     bus_busy_cycles=busy,
                     contended_cycles=contended,
                     per_sm_mem_wait=tuple(sm.mem_wait for sm in sms))
