"""Memory-access analysis: global-memory coalescing and shared-memory
bank conflicts, per the G80 rules the paper optimizes for.

Global memory (paper Section II-A): "thread N of a half-warp must access
an address of the form WarpBaseAddress + N, with WarpBaseAddress ≡ 0 mod
NumberOfBanks.  Such accesses by all threads can then be coalesced into
a single access."  Anything else is serviced as one transaction per
thread on G80 hardware.

Shared memory: 16 banks, word-interleaved; the conflict degree is the
maximum number of threads of a half-warp hitting the same bank, and
accesses serialize by that factor (at 1-cycle latency, hence the paper's
observation that shared-memory conflicts are cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import SimulationError
from .device import DeviceConfig

# Maps a thread id to the *word index* it touches for one access slot.
AddressFunction = Callable[[int], int]


@dataclass(frozen=True)
class CoalescingReport:
    """Result of analysing one access slot across a half-warp."""

    transactions: int
    bytes_moved: int
    coalesced: bool

    @property
    def efficiency(self) -> float:
        """Useful bytes / bytes moved (1.0 when perfectly coalesced)."""
        useful = min(self.bytes_moved, 4 * 16)
        return useful / self.bytes_moved if self.bytes_moved else 1.0


def transaction_split(*reports: CoalescingReport) -> tuple[int, int]:
    """``(coalesced, uncoalesced)`` transaction totals across reports.

    Feeds the simulator's bus-transaction counters: a report whose
    accesses all coalesced contributes to the first bucket, anything
    else to the second (on G80 a partially-coalesced pattern is
    serviced one transaction per thread, i.e. uncoalesced).
    """
    coalesced = 0
    uncoalesced = 0
    for report in reports:
        if report.coalesced:
            coalesced += report.transactions
        else:
            uncoalesced += report.transactions
    return coalesced, uncoalesced


def analyze_half_warp(addresses: Sequence[int],
                      device: DeviceConfig) -> CoalescingReport:
    """Classify one half-warp's simultaneous word accesses.

    ``addresses`` are word indices (4-byte granularity), one per thread
    of the half-warp.  G80 coalesces iff thread ``N`` reads word
    ``base + N`` with ``base`` aligned to the half-warp size; otherwise
    each thread pays its own 32-byte transaction.
    """
    if not addresses:
        raise SimulationError("half-warp address list is empty")
    if len(addresses) > device.half_warp:
        raise SimulationError(
            f"{len(addresses)} addresses exceed the half-warp size "
            f"{device.half_warp}")
    base = addresses[0]
    aligned = base % device.half_warp == 0
    contiguous = all(addr == base + i for i, addr in enumerate(addresses))
    if aligned and contiguous:
        return CoalescingReport(
            transactions=1,
            bytes_moved=device.coalesced_segment_bytes,
            coalesced=True)
    return CoalescingReport(
        transactions=len(addresses),
        bytes_moved=len(addresses) * device.uncoalesced_transaction_bytes,
        coalesced=False)


def analyze_access_pattern(address_fn: AddressFunction, num_threads: int,
                           device: DeviceConfig) -> CoalescingReport:
    """Aggregate coalescing over all half-warps of a block's one access.

    ``address_fn(tid)`` gives the word index thread ``tid`` touches.
    Returns the summed transactions/bytes across ``num_threads`` threads
    split into half-warps.
    """
    if num_threads < 1:
        raise SimulationError("need at least one thread")
    total_transactions = 0
    total_bytes = 0
    all_coalesced = True
    for start in range(0, num_threads, device.half_warp):
        chunk = [address_fn(tid)
                 for tid in range(start,
                                  min(start + device.half_warp,
                                      num_threads))]
        report = analyze_half_warp(chunk, device)
        total_transactions += report.transactions
        total_bytes += report.bytes_moved
        all_coalesced = all_coalesced and report.coalesced
    return CoalescingReport(total_transactions, total_bytes, all_coalesced)


def shared_bank_conflict_degree(addresses: Sequence[int],
                                device: DeviceConfig) -> int:
    """Max number of half-warp threads hitting one shared-memory bank."""
    if not addresses:
        raise SimulationError("half-warp address list is empty")
    counts: dict[int, int] = {}
    for addr in addresses:
        bank = addr % device.shared_mem_banks
        counts[bank] = counts.get(bank, 0) + 1
    return max(counts.values())


@dataclass(frozen=True)
class AccessSpec:
    """Parametric description of one token access by every thread.

    The two layouts the paper contrasts (Figures 8 and 9):

    * ``kind="strided"``: the natural FIFO order — thread ``tid``'s
      ``n``-th token lives at ``tid * rate + n``; uncoalesced whenever
      ``rate > 1``.
    * ``kind="shuffled"``: the paper's optimized layout — thread
      ``tid``'s ``n``-th token lives at
      ``128*n + (tid // 128)*128*rate + (tid % 128)`` (eqs. 10/11);
      always coalesced.
    """

    kind: str
    rate: int
    slot: int = 0

    def address_fn(self) -> AddressFunction:
        if self.kind == "strided":
            return lambda tid: tid * self.rate + self.slot
        if self.kind == "shuffled":
            cluster = 128
            return lambda tid: (cluster * self.slot
                                + (tid // cluster) * cluster * self.rate
                                + tid % cluster)
        raise SimulationError(f"unknown access kind {self.kind!r}")


def transactions_for_filter_access(rate: int, num_threads: int,
                                   device: DeviceConfig,
                                   coalesced_layout: bool) -> CoalescingReport:
    """Total global-memory traffic for a filter moving ``rate`` tokens
    per thread under either buffer layout.

    Sums the per-slot access analysis over all ``rate`` slots of all
    half-warps — the exact traffic the buffer layouts of Figures 8/9
    generate.
    """
    if rate == 0:
        return CoalescingReport(0, 0, True)
    kind = "shuffled" if coalesced_layout else "strided"
    total_tx = 0
    total_bytes = 0
    all_coalesced = True
    for slot in range(rate):
        spec = AccessSpec(kind, rate, slot)
        report = analyze_access_pattern(spec.address_fn(), num_threads,
                                        device)
        total_tx += report.transactions
        total_bytes += report.bytes_moved
        all_coalesced = all_coalesced and report.coalesced
    return CoalescingReport(total_tx, total_bytes, all_coalesced)
