"""Analytic SM timing model.

Estimates the cycles one SM spends executing a filter with ``t``
threads, combining the three first-order G80 effects the paper's
methodology revolves around:

1. **Compute throughput** — a warp instruction occupies the 8 scalar
   units for 4 cycles, so compute time scales with warps x ops.
2. **Memory traffic** — transactions from the coalescing analyzer times
   the per-transaction service time at the SM's share of the bus.
3. **Latency hiding (SMT)** — with ``W`` resident warps the SM
   overlaps one warp's memory stalls with other warps' compute; exposed
   latency shrinks with occupancy and grows again when register
   pressure forces fewer resident warps or introduces spill traffic.

The model is a max-of-bottlenecks estimate in the style of Hong & Kim
(ISCA'09), which is the right fidelity for reproducing *relative*
schedule quality — the paper itself only relies on relative filter
delays measured by profiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from ..graph.nodes import WorkEstimate
from .device import DeviceConfig
from .memory import transaction_split, transactions_for_filter_access
from .occupancy import Occupancy, compute_occupancy, spill_registers


@dataclass(frozen=True)
class FilterTiming:
    """Cycle breakdown for one filter execution on one SM.

    ``coalesced_transactions`` / ``uncoalesced_transactions`` split the
    global-memory traffic by coalescing outcome (the counter pair the
    observability layer aggregates per kernel)."""

    cycles: float
    compute_cycles: float
    memory_cycles: float
    latency_cycles: float
    bytes_moved: int
    occupancy: Occupancy
    coalesced_transactions: int = 0
    uncoalesced_transactions: int = 0

    @property
    def bound(self) -> str:
        parts = {"compute": self.compute_cycles,
                 "bandwidth": self.memory_cycles,
                 "latency": self.latency_cycles}
        return max(parts, key=lambda k: parts[k])


def estimate_filter_cycles(estimate: WorkEstimate, threads: int,
                           device: DeviceConfig, *,
                           register_cap: int | None = None,
                           coalesced: bool = True,
                           use_shared_staging: bool = False,
                           bandwidth_share: float = 1.0) -> FilterTiming:
    """Cycles for ``threads`` parallel firings of a filter on one SM.

    ``register_cap`` models nvcc's ``-maxrregcount``: demand beyond the
    cap turns into spill loads/stores.  ``bandwidth_share`` in (0, 1] is
    this SM's fraction of the device bus (set by the kernel simulator
    from how many SMs are concurrently active).

    ``use_shared_staging`` models the SWPNC fallback: the working set is
    staged through shared memory with coalesced copies, and the compute
    phase reads shared memory at 1-cycle latency (with mild bank
    serialization folded into the copy cost).
    """
    if threads < 1:
        raise SimulationError("need at least one thread")
    if not 0 < bandwidth_share <= 1:
        raise SimulationError("bandwidth_share must be in (0, 1]")

    regs = estimate.registers
    cap = register_cap if register_cap is not None else regs
    spilled = spill_registers(regs, cap)
    effective_regs = min(regs, cap)

    block_threads = min(threads, device.max_threads_per_block)
    shared_bytes = 0
    if use_shared_staging:
        # The staged working set exploits window overlap: a block of
        # consecutive firings shares its peek history, so the input
        # footprint is threads*pop + (peek - pop), not threads*peek
        # (this is why the paper's SWPNC survives on the peeking-filter
        # benchmarks Filterbank and FMRadio).
        in_tokens = (block_threads * estimate.fresh_loads
                     + estimate.window_overlap)
        out_tokens = block_threads * estimate.stores
        shared_bytes = (in_tokens + out_tokens) * device.token_bytes

    occupancy = compute_occupancy(
        device, block_threads, max(1, effective_regs), shared_bytes)
    if not occupancy.feasible:
        return FilterTiming(math.inf, math.inf, math.inf, math.inf, 0,
                            occupancy)

    warps = math.ceil(threads / device.warp_size)
    # Each spilled register costs one reload + one store per firing.
    spill_ops = 2 * spilled
    compute_cycles = (warps * (estimate.compute_ops + spill_ops)
                      * device.cycles_per_warp_instruction)

    # --- global-memory traffic ------------------------------------------
    loads = estimate.loads
    stores = estimate.stores
    uncoalesced_global = False
    if use_shared_staging:
        # Stage in/out with coalesced copies of the *unique* working set
        # (one token loaded once per block, however many threads peek
        # at it), then compute against shared memory.
        unique_in = (threads * estimate.fresh_loads
                     + estimate.window_overlap * math.ceil(
                         threads / block_threads))
        unique_out = threads * stores
        segments = math.ceil(unique_in / device.half_warp) \
            + math.ceil(unique_out / device.half_warp)
        coalesced_tx, uncoalesced_tx = segments, 0
        in_bytes = segments * device.coalesced_segment_bytes
        out_bytes = 0
        global_accesses_per_thread = estimate.fresh_loads + stores
        # Shared-memory phase: one access per window token at 1 cycle
        # with a mild bank-conflict factor, plus barrier overhead for
        # the cooperative load/compute/store phases.
        shared_phase = (loads + stores) * 2 * warps \
            + 3 * device.firing_overhead_cycles
        compute_cycles += shared_phase
        bytes_moved = in_bytes + out_bytes
    else:
        report_in = transactions_for_filter_access(
            loads, threads, device, coalesced_layout=coalesced)
        report_out = transactions_for_filter_access(
            stores, threads, device, coalesced_layout=coalesced)
        coalesced_tx, uncoalesced_tx = transaction_split(report_in,
                                                         report_out)
        in_bytes = report_in.bytes_moved
        if coalesced and estimate.window_overlap > 0 and loads > 0:
            # Peeking filters re-read bytes their neighbour threads just
            # streamed; the repeats hit open DRAM rows at a fraction of
            # the cold cost.
            unique_tokens = threads * estimate.fresh_loads \
                + estimate.window_overlap
            unique_fraction = min(1.0, unique_tokens / (loads * threads))
            in_bytes *= (unique_fraction
                         + (1 - unique_fraction) * device.dram_row_hit_cost)
        bytes_moved = in_bytes + report_out.bytes_moved
        global_accesses_per_thread = loads + stores
        uncoalesced_global = not coalesced
    spill_bytes = spill_ops * threads * device.token_bytes
    bytes_moved += spill_bytes

    bandwidth = device.mem_bandwidth_bytes_per_cycle * bandwidth_share
    memory_cycles = bytes_moved / bandwidth

    # --- exposed latency ---------------------------------------------------
    # An uncoalesced half-warp issues one transaction per thread; the
    # memory pipeline serializes them, multiplying the effective access
    # latency by the half-warp size (the first-order penalty the
    # optimized buffer layout removes).
    serialization = device.half_warp if uncoalesced_global else 1
    accesses_per_thread = global_accesses_per_thread + spill_ops
    resident = max(1, occupancy.active_warps)
    batches = math.ceil(warps / resident)
    single_warp = (estimate.compute_ops
                   * device.cycles_per_warp_instruction
                   + accesses_per_thread * serialization
                   * device.mem_latency_cycles / max(1, resident))
    latency_cycles = batches * single_warp

    cycles = max(compute_cycles, memory_cycles, latency_cycles) \
        + device.firing_overhead_cycles
    return FilterTiming(cycles, compute_cycles, memory_cycles,
                        latency_cycles, bytes_moved, occupancy,
                        coalesced_transactions=coalesced_tx,
                        uncoalesced_transactions=uncoalesced_tx)


def cpu_reference_cycles(estimate: WorkEstimate, firings: int,
                         ops_per_cycle: float = 2.0,
                         mem_cycles: float = 1.5) -> float:
    """Matching single-thread CPU cost for the same work (cross-checks)."""
    per_firing = (estimate.compute_ops / ops_per_cycle
                  + estimate.total_memory_ops * mem_cycles)
    return per_firing * firings
