"""CUDA occupancy calculation for G80-class devices.

Determines how many thread blocks (and therefore warps) can be resident
on one SM given the per-thread register demand and per-block shared
memory demand — the quantity the paper's profiling phase navigates:
"Higher levels of SMT do not automatically translate to higher
performance, since the number of registers in each multiprocessor is
fixed" (Section I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from .device import DeviceConfig


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel configuration on a single SM."""

    blocks_per_sm: int
    threads_per_block: int
    active_threads: int
    active_warps: int
    limiting_factor: str

    @property
    def feasible(self) -> bool:
        return self.blocks_per_sm >= 1


def compute_occupancy(device: DeviceConfig, threads_per_block: int,
                      regs_per_thread: int,
                      shared_bytes_per_block: int = 0) -> Occupancy:
    """How many copies of a block fit on one SM, and what limits them."""
    if threads_per_block < 1:
        raise SimulationError("threads_per_block must be >= 1")
    if regs_per_thread < 1:
        raise SimulationError("regs_per_thread must be >= 1")
    if shared_bytes_per_block < 0:
        raise SimulationError("shared memory demand cannot be negative")
    if threads_per_block > device.max_threads_per_block:
        return Occupancy(0, threads_per_block, 0, 0, "block size")

    limits = {"thread capacity":
              device.max_threads_per_sm // threads_per_block,
              "block slots": device.max_blocks_per_sm,
              "registers":
              device.registers_per_sm
              // (regs_per_thread * threads_per_block)}
    if shared_bytes_per_block > 0:
        limits["shared memory"] = (device.shared_mem_per_sm
                                   // shared_bytes_per_block)

    limiting_factor = min(limits, key=lambda k: limits[k])
    blocks = limits[limiting_factor]
    if blocks < 1:
        return Occupancy(0, threads_per_block, 0, 0, limiting_factor)

    active_threads = blocks * threads_per_block
    active_warps = min(device.max_warps_per_sm,
                       math.ceil(active_threads / device.warp_size))
    return Occupancy(blocks, threads_per_block, active_threads,
                     active_warps, limiting_factor)


def config_is_feasible(device: DeviceConfig, threads_per_block: int,
                       regs_per_thread: int,
                       shared_bytes_per_block: int = 0) -> bool:
    """The paper's feasibility test: can the kernel launch at all?

    A profile configuration "fails to execute due to lack of registers"
    when even a single block does not fit (Fig. 6, line 5).
    """
    occupancy = compute_occupancy(device, threads_per_block,
                                  regs_per_thread, shared_bytes_per_block)
    return occupancy.feasible


def spill_registers(natural_registers: int, register_cap: int) -> int:
    """Registers that overflow a compile-time cap and spill to memory.

    The CUDA compiler "generates the necessary spill code into device
    memory" when a kernel is compiled for fewer registers than it needs
    (Section II-A).
    """
    if register_cap < 1:
        raise SimulationError("register cap must be >= 1")
    return max(0, natural_registers - register_cap)
