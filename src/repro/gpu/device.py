"""GPU device configurations (GeForce 8800-class, paper Section II-A).

All architectural constants the rest of the simulator relies on live in
one frozen dataclass, with presets for the card the paper used (GeForce
8800 GTS 512) and two siblings for sensitivity studies.

Timing conventions: all costs are in *shader-clock cycles*.  Memory
bandwidth is expressed in bytes per shader cycle so the simulator never
mixes units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SimulationError


@dataclass(frozen=True)
class DeviceConfig:
    """Architecture description of a CUDA GPU of the G80 generation."""

    name: str = "GeForce 8800 GTS 512"
    num_sms: int = 16
    scalar_units_per_sm: int = 8
    registers_per_sm: int = 8192
    shared_mem_per_sm: int = 16 * 1024
    device_memory_bytes: int = 512 * 1024 * 1024

    warp_size: int = 32
    half_warp: int = 16
    max_threads_per_sm: int = 768
    max_threads_per_block: int = 512
    max_blocks_per_sm: int = 8
    max_warps_per_sm: int = 24

    shader_clock_ghz: float = 1.625
    # Memory subsystem: a 256-bit GDDR3 interface at ~0.97 GHz moves
    # ~62 GB/s; normalized to the shader clock that is ~38 bytes/cycle.
    mem_bandwidth_bytes_per_cycle: float = 38.0
    mem_latency_cycles: int = 500
    # Minimum DRAM transaction on G80 is 32 bytes; a fully coalesced
    # half-warp of 4-byte words moves one 64-byte segment.
    coalesced_segment_bytes: int = 64
    uncoalesced_transaction_bytes: int = 32

    shared_mem_banks: int = 16
    shared_mem_latency_cycles: int = 1

    # Re-reading bytes that a neighbouring thread just streamed (the
    # overlapping windows of peeking filters) hits an open DRAM row;
    # those repeat accesses cost this fraction of a cold access.
    dram_row_hit_cost: float = 0.3

    # A warp instruction occupies the 8 scalar units for 4 cycles.
    cycles_per_warp_instruction: int = 4

    # Host-side cost of dispatching one kernel through the CUDA runtime
    # (driver + PCIe round trip): ~7 us at the shader clock.  This is
    # the overhead SWPn coarsening amortizes (paper Section V-B).
    kernel_launch_cycles: int = 11000
    # Per-filter-execution bookkeeping inside a kernel: buffer index
    # computation, staging-predicate check, switch dispatch.  Makes
    # higher SMT (fewer, fatter macro-firings) preferable for
    # memory-bound filters, as the paper's profiling observes.
    firing_overhead_cycles: int = 40
    token_bytes: int = 4

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise SimulationError("device needs at least one SM")
        if self.warp_size % self.half_warp:
            raise SimulationError("warp size must be a multiple of the "
                                  "half-warp size")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise SimulationError("a block cannot exceed the SM thread "
                                  "capacity")
        if self.mem_bandwidth_bytes_per_cycle <= 0:
            raise SimulationError("memory bandwidth must be positive")

    @property
    def total_scalar_units(self) -> int:
        return self.num_sms * self.scalar_units_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.shader_clock_ghz * 1e9)

    def with_sms(self, num_sms: int) -> "DeviceConfig":
        """A copy with a different SM count (scaling studies)."""
        return replace(self, num_sms=num_sms,
                       name=f"{self.name} ({num_sms} SMs)")


GEFORCE_8800_GTS_512 = DeviceConfig()

GEFORCE_8800_GTX = DeviceConfig(
    name="GeForce 8800 GTX",
    num_sms=16,
    shader_clock_ghz=1.35,
    mem_bandwidth_bytes_per_cycle=64.0,  # 384-bit bus, ~86 GB/s
    device_memory_bytes=768 * 1024 * 1024,
)

GEFORCE_8600_GTS = DeviceConfig(
    name="GeForce 8600 GTS",
    num_sms=4,
    shader_clock_ghz=1.45,
    mem_bandwidth_bytes_per_cycle=22.0,  # 128-bit bus, ~32 GB/s
    device_memory_bytes=256 * 1024 * 1024,
)

# The register budgets and thread counts the paper profiles with
# (Fig. 6): each (regs, threads) pair exactly fills the 8192-register
# file of one SM — 16*512 == 20*384 (rounded) == 32*256 == 64*128.
PROFILE_REGISTER_BUDGETS = (16, 20, 32, 64)
PROFILE_THREAD_COUNTS = (128, 256, 384, 512)
