#!/usr/bin/env python3
"""Quickstart: build a stream program, compile it for the GPU model,
and inspect the software-pipelined schedule.

This walks the paper's whole trajectory (Fig. 5) on a small program:
profiling -> execution-configuration selection -> ILP software
pipelining -> buffer layout -> simulated execution, and compares the
result against the single-threaded CPU baseline.

Run:  python examples/quickstart.py
"""

from repro import Filter, Pipeline, flatten
from repro.apps.common import float_source, null_sink
from repro.compiler import CompileOptions, compile_stream_program
from repro.runtime import run_reference


def build_program():
    """A 4-stage pipeline: generate -> scale -> moving sum -> consume."""
    scale = Filter("scale", pop=1, push=1, work=lambda w: [w[0] * 0.5])
    moving_sum = Filter("moving_sum", pop=1, push=1, peek=8,
                        work=lambda w: [sum(w[:8])])
    return flatten(Pipeline([
        float_source("sensor", push=1),
        scale,
        moving_sum,
        null_sink(1, "output"),
    ], name="quickstart"), name="quickstart")


def main() -> None:
    graph = build_program()
    print("Stream graph:", graph.summary())

    # Functional reference run (the golden model).
    outputs = run_reference(graph, iterations=4)
    sink = graph.sinks[0]
    print("First reference outputs:",
          [round(v, 3) for v in outputs[sink.uid][:4]])

    # Full compilation: profile, select configuration, software
    # pipeline via ILP, lay out buffers, simulate on the 8800 GTS 512.
    compiled = compile_stream_program(
        graph, CompileOptions(scheme="swp", coarsening=8))

    schedule = compiled.schedule
    print(f"\nSelected register budget: {compiled.config.register_cap}")
    for node in graph.nodes:
        print(f"  {node.name:12s} threads={compiled.config.threads[node.uid]:4d}"
              f" delay={compiled.config.delays[node.uid]:9.1f} cycles")
    print(f"\nInitiation interval: {schedule.ii:.0f} cycles "
          f"(relaxed {100 * schedule.relaxation:.1f}% above the MII, "
          f"{schedule.attempts} ILP attempts)")
    print(f"Pipeline stages: 0..{schedule.max_stage}")
    print(schedule.describe())

    print(f"\nBuffers: {compiled.buffer_bytes} bytes total")
    for buffer in compiled.buffers:
        print(f"  {buffer.name:24s} {buffer.tokens:6d} tokens "
              f"({buffer.layout})")

    print(f"\nGPU time (simulated): {compiled.gpu_seconds * 1e3:.3f} ms")
    print(f"CPU time (modeled):    {compiled.cpu_seconds * 1e3:.3f} ms")
    print(f"Speedup over single-threaded CPU: {compiled.speedup:.2f}x")


if __name__ == "__main__":
    main()
