#!/usr/bin/env python3
"""Write a stream program in the StreamIt-like surface language, compile
it end-to-end, and dump the generated CUDA sources.

Demonstrates the full front-to-back story: text -> AST -> stream graph
-> ILP software pipelining -> CUDA code generation, with the DSL work
bodies lowered both to executable Python (for the golden run) and to
CUDA C (emitted verbatim in the device functions).

Run:  python examples/custom_dsl_program.py
"""

from repro.codegen import generate_sources
from repro.compiler import CompileOptions, compile_stream_program
from repro.lang import build_graph
from repro.runtime import run_reference

SOURCE = """
// An audio-style chain: oscillator -> echo -> soft clip -> meter.

void->float filter Oscillator(int N) {
    work push N {
        for (int i = 0; i < N; i++) {
            push(sin(0.19634954 * i));   // pi/16
        }
    }
}

float->float filter Echo(int D, float decay) {
    work pop 1 push 1 peek D {
        push(peek(0) + decay * peek(D - 1));
        pop();
    }
}

float->float filter SoftClip(float limit) {
    work pop 1 push 1 {
        float v = pop();
        if (v > limit) { v = limit; }
        if (v < -limit) { v = -limit; }
        push(v);
    }
}

float->void filter Meter() {
    work pop 4 {
        pop(); pop(); pop(); pop();
    }
}

void->void pipeline Main() {
    add Oscillator(8);
    add Echo(16, 0.5);
    add SoftClip(0.8);
    add Meter();
}
"""


def main() -> None:
    graph = build_graph(SOURCE)
    print("Parsed + elaborated:", graph.summary())

    outputs = run_reference(graph, iterations=3)
    sink = graph.sinks[0]
    print("First metered samples:",
          [round(v, 3) for v in outputs[sink.uid][:6]])

    compiled = compile_stream_program(
        graph, CompileOptions(scheme="swp", coarsening=4))
    print(f"\nSpeedup over 1-thread CPU: {compiled.speedup:.2f}x "
          f"(II {compiled.schedule.ii:.0f}, "
          f"stages 0..{compiled.schedule.max_stage})")

    sources = generate_sources(compiled.program, compiled.schedule,
                               compiled.buffers, coarsening=4)
    print("\n--- generated indexing header " + "-" * 30)
    print(sources.indexing_header)
    print("--- generated Echo device function (DSL body) " + "-" * 14)
    for chunk in sources.device_functions.split("\n\n"):
        if "work_Echo" in chunk:
            print(chunk)
            break
    print("--- software-pipelined kernel (first 25 lines) " + "-" * 13)
    print("\n".join(sources.swp_kernel.splitlines()[:25]))


if __name__ == "__main__":
    main()
