#!/usr/bin/env python3
"""Compile the FMRadio benchmark under all three schemes of the paper's
evaluation (optimized SWP, SWP without coalescing, Serial) and compare.

FMRadio is the paper's showcase benchmark: 22 peeking FIR filters whose
windows the shared-memory staging fallback can exploit, and the largest
reported speedup class.  This example prints the same comparison row
that Fig. 10 plots.

Run:  python examples/fm_radio_pipeline.py
"""

from repro.apps import benchmark_by_name
from repro.compiler import CompileOptions, compile_stream_program
from repro.runtime import run_reference


def main() -> None:
    info = benchmark_by_name("FMRadio")
    graph = info.build()
    print(f"{info.name}: {info.description}")
    print("Graph:", graph.summary())

    # Golden functional run.
    outputs = run_reference(graph, iterations=2)
    sink = graph.sinks[0]
    print("First demodulated samples:",
          [round(v, 2) for v in outputs[sink.uid][:4]])

    # The optimized software-pipelined compilation (SWP8).
    swp = compile_stream_program(
        graph, CompileOptions(scheme="swp", coarsening=8))
    print(f"\nSWP8:   speedup {swp.speedup:6.2f}x, "
          f"II {swp.schedule.ii:.0f} cycles, "
          f"stages 0..{swp.schedule.max_stage}, "
          f"buffers {swp.buffer_bytes / 1e6:.2f} MB")

    # The non-coalesced variant; its peeking filters are staged through
    # shared memory, which is why it stays competitive here (paper
    # Section V-B).
    swpnc = compile_stream_program(
        graph, CompileOptions(scheme="swpnc", coarsening=8))
    staged = sum(1 for node in graph.nodes
                 if swpnc.config.uses_shared_staging(node))
    print(f"SWPNC:  speedup {swpnc.speedup:6.2f}x "
          f"({staged} filters staged through shared memory)")

    # The Serial (SAS) baseline, buffer-capped to the SWP8 requirement.
    serial = compile_stream_program(
        graph, CompileOptions(scheme="serial"),
        swp_buffer_budget=swp.buffer_bytes)
    print(f"Serial: speedup {serial.speedup:6.2f}x "
          f"({serial.sas_plan.kernels_per_sweep} kernel launches per "
          f"{serial.sas_plan.rounds}-iteration sweep)")

    print("\nPaper shape check: SWP8 > Serial, and SWPNC stays close to "
          "SWP8 thanks to shared-memory staging.")


if __name__ == "__main__":
    main()
