#!/usr/bin/env python3
"""Reproduce the profiling methodology of paper Fig. 6 / Alg. 7 on one
filter, showing the register-pressure / SMT-level tradeoff.

Profiles a register-hungry FIR filter across the paper's grid (register
budgets {16, 20, 32, 64} x thread counts {128, 256, 384, 512}), prints
the run-time table with infeasible configurations marked, and shows
which execution configuration Algorithm 7 selects for the surrounding
program.

Run:  python examples/profiling_study.py
"""

import math

from repro.apps.common import fir_filter, float_source, low_pass_taps, null_sink
from repro.core import profile_graph, select_configuration
from repro.graph import Pipeline, flatten
from repro.gpu import (
    GEFORCE_8800_GTS_512,
    PROFILE_REGISTER_BUDGETS,
    PROFILE_THREAD_COUNTS,
)


def main() -> None:
    device = GEFORCE_8800_GTS_512
    # A 96-tap FIR wants ~22 registers: low register caps force spills,
    # high caps limit the threads that fit — the exact tension the
    # paper's profiling phase navigates.
    fir = fir_filter("fir96", low_pass_taps(250e6, 108e6, 96))
    graph = flatten(Pipeline([
        float_source("signal", push=1),
        fir,
        null_sink(1, "out"),
    ], name="profilingstudy"), name="profilingstudy")

    table = profile_graph(graph, device)
    fir_node = next(n for n in graph.nodes if n.name == "fir96")
    print(f"Filter: {fir_node.name} "
          f"(pop 1, push 1, peek {fir_node.peek}, "
          f"~{fir_node.estimate.registers} registers needed)\n")

    header = "regs\\threads " + "".join(f"{t:>12d}"
                                        for t in PROFILE_THREAD_COUNTS)
    print(header)
    for regs in PROFILE_REGISTER_BUDGETS:
        cells = []
        for threads in PROFILE_THREAD_COUNTS:
            value = table.run_time(fir_node, regs, threads)
            cells.append("   infeasible" if math.isinf(value)
                         else f"{value:12.0f}")
        print(f"{regs:4d}        " + "".join(cells))
    print("\n(run times in simulated cycles for the same total firings; "
          "'infeasible' = the kernel cannot launch, Fig. 6 line 6)")

    result = select_configuration(graph, table)
    config = result.config
    print(f"\nAlgorithm 7 selected: register budget "
          f"{config.register_cap}")
    for node in graph.nodes:
        print(f"  {node.name:10s} -> {config.threads[node.uid]:4d} "
              f"threads, delay {config.delays[node.uid]:10.1f} cycles")
    print("\nAll evaluated (regs, maxThreads) pairs, work-normalized II:")
    for evaluation in result.evaluations:
        marker = " <== best" if evaluation is result.best else ""
        print(f"  regs={evaluation.register_cap:3d} "
              f"maxThreads={evaluation.max_threads:4d} "
              f"normalized II={evaluation.normalized_ii:10.4f}{marker}")


if __name__ == "__main__":
    main()
