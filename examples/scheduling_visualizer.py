#!/usr/bin/env python3
"""Visualize a software-pipelined schedule as an ASCII Gantt chart.

Compiles the DCT benchmark, then renders each SM's instances across the
initiation interval (offsets `o`), annotated with pipeline stages `f` —
the schedule structure that Section III's ILP produces.  Also runs the
functional pipelined executor to confirm the schedule computes exactly
what the reference interpreter computes.

Run:  python examples/scheduling_visualizer.py
"""

from repro.apps import benchmark_by_name
from repro.core import configure_program, search_ii, uniform_config
from repro.runtime.swp_executor import verify_against_reference

WIDTH = 72


def render(schedule, names) -> str:
    lines = []
    ii = schedule.ii
    for sm in schedule.used_sms:
        placements = schedule.sm_order(sm)
        row = [" "] * WIDTH
        for placement in placements:
            start = int(placement.offset / ii * (WIDTH - 1))
            length = max(1, int(schedule.problem.delays[placement.node]
                                / ii * WIDTH))
            label = f"{names[placement.node][:6]}/f{placement.stage}"
            for i in range(start, min(WIDTH, start + length)):
                row[i] = "#"
            for i, ch in enumerate(label):
                if start + i < WIDTH:
                    row[start + i] = ch
        load = schedule.sm_load(sm)
        lines.append(f"SM{sm:2d} |{''.join(row)}| "
                     f"{100 * load / ii:5.1f}% busy")
    return "\n".join(lines)


def main() -> None:
    info = benchmark_by_name("DCT")
    graph = info.build()
    print(f"Scheduling {info.name}: {graph.summary()}\n")

    # Small thread counts keep the functional verification fast; the
    # schedule structure is the same as at full width.
    program = configure_program(graph, uniform_config(graph, threads=4),
                                num_sms=8)
    result = search_ii(program.problem)
    schedule = result.schedule

    print(f"II = {schedule.ii:.0f} cycles "
          f"(MII {result.mii:.0f}, relaxed {100 * result.relaxation:.1f}%, "
          f"{len(result.attempts)} ILP attempts, "
          f"{result.total_seconds:.1f}s)\n")
    print(render(schedule, program.problem.names))
    print(f"\nPipeline depth: {schedule.max_stage} stages — instances at "
          f"stage f execute iteration (n - f) during invocation n.")

    run = verify_against_reference(program, schedule)
    print(f"\nFunctional check: {run.fired_instances} macro-instances "
          f"executed over {run.invocations} invocations; outputs match "
          f"the reference interpreter token-for-token.")
    print("Peak channel footprints (tokens):",
          run.channel_peak_footprint[:8], "...")


if __name__ == "__main__":
    main()
